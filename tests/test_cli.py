import pytest

from repro.cli import main


class TestCliCommands:
    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Rotate" in out and "Bootstrap" in out

    def test_table4_optimized_config(self, capsys):
        assert main(["table4", "--params", "optimal", "--config", "all"]) == 0
        assert "Bootstrap" in capsys.readouterr().out

    def test_table5_quick(self, capsys):
        assert main(["table5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Baseline" in out and "Search optimal" in out

    def test_table6(self, capsys):
        assert main(["table6"]) == 0
        out = capsys.readouterr().out
        assert "CraterLake" in out and "MAD-32" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        assert "saved" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Limb Re-order" in out

    def test_fig3(self, capsys):
        assert main(["fig3", "--params", "baseline"]) == 0
        assert "Key Compression" in capsys.readouterr().out

    def test_fig6(self, capsys):
        assert main(["fig6", "--workload", "resnet", "--design", "BTS",
                     "--caches", "32"]) == 0
        assert "BTS" in capsys.readouterr().out

    def test_bootstrap_breakdown(self, capsys):
        assert main(["bootstrap", "--params", "optimal", "--config", "all",
                     "--cache-mb", "32"]) == 0
        out = capsys.readouterr().out
        assert "CoeffToSlot" in out and "Total" in out

    def test_search_quick(self, capsys):
        assert main(["search", "--quick", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("#") == 2

    def test_ledger(self, capsys):
        assert main(["ledger", "--params", "optimal", "--config", "all"]) == 0
        out = capsys.readouterr().out
        assert "EvalMod:Mult" in out and "Total" in out

    def test_balance(self, capsys):
        assert main(["balance"]) == 0
        out = capsys.readouterr().out
        assert "MAD-32" in out and "balance" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestJsonOutput:
    """--json renders each table as parseable JSON."""

    def test_table4_json(self, capsys):
        import json

        assert main(["table4", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {row["operation"] for row in rows} >= {"Mult", "Bootstrap"}
        assert all("giga_ops" in row for row in rows)

    def test_table6_json(self, capsys):
        import json

        assert main(["table6", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert any("MAD-32" in row["design"] for row in rows)

    def test_fig2_json(self, capsys):
        import json

        assert main(["fig2", "--json"]) == 0
        points = json.loads(capsys.readouterr().out)
        assert points[0]["reduction_vs_baseline"] == 0.0

    def test_fig3_json(self, capsys):
        import json

        assert main(["fig3", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)

    def test_bootstrap_json(self, capsys):
        import json

        assert main(["bootstrap", "--json", "--config", "all"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["phases"]) == {
            "ModRaise", "CoeffToSlot", "EvalMod", "SlotToCoeff",
        }
        assert payload["total"]["ops"]["total"] == sum(
            phase["ops"]["total"] for phase in payload["phases"].values()
        )
        assert payload["config"]["key_compression"] is True

    def test_ledger_json(self, capsys):
        import json

        assert main(["ledger", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "EvalMod:Mult" in payload["components"]
        assert payload["total"]["traffic"]["total"] == sum(
            c["traffic"]["total"] for c in payload["components"].values()
        )


class TestTraceCommand:
    def test_trace_bootstrap_writes_valid_chrome_trace(self, capsys, tmp_path):
        import json

        from repro.params import BASELINE_JUNG
        from repro.perf import BootstrapModel, MADConfig

        out = tmp_path / "trace.json"
        assert main(["trace", "bootstrap", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "Span" in stdout and str(out) in stdout

        doc = json.loads(out.read_text())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in events}
        assert names >= {"ModRaise", "CoeffToSlot", "EvalMod", "SlotToCoeff"}
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in events)

        untraced = BootstrapModel(BASELINE_JUNG, MADConfig.none()).total_cost()
        costed = [e for e in events if "cost" in e["args"]]
        assert sum(e["args"]["ops"] for e in costed) == untraced.ops.total
        assert (
            sum(e["args"]["bytes"] for e in costed) == untraced.traffic.total
        )

    def test_trace_writes_validated_run_report(self, capsys, tmp_path):
        import json

        from repro.obs.export import SCHEMA_ID, validate_run_report

        out = tmp_path / "trace.json"
        report_path = tmp_path / "report.json"
        assert main([
            "trace", "bootstrap", "--out", str(out),
            "--report", str(report_path), "--design", "BTS",
            "--config", "all", "--cache-mb", "256",
        ]) == 0
        report = json.loads(report_path.read_text())
        validate_run_report(report)
        assert report["schema"] == SCHEMA_ID
        assert report["command"] == "trace bootstrap"
        assert report["config"]["key_compression"] is True
        assert report["runtime"]["design"] == "BTS"
        assert report["runtime"]["bound"] in ("compute", "memory")
        assert report["metrics"]["counters"]

    def test_trace_helr_workload(self, capsys, tmp_path):
        import json

        out = tmp_path / "helr.json"
        assert main(["trace", "helr", "--out", str(out)]) == 0
        names = {
            e["name"]
            for e in json.loads(out.read_text())["traceEvents"]
            if e["ph"] == "X"
        }
        assert "Workload" in names and "Bootstraps" in names

    def test_trace_resnet_workload(self, tmp_path):
        out = tmp_path / "resnet.json"
        assert main(["trace", "resnet", "--out", str(out)]) == 0
        assert out.exists()

    def test_trace_leaves_tracing_disabled(self, tmp_path):
        from repro.obs import state

        assert main(
            ["trace", "bootstrap", "--out", str(tmp_path / "t.json")]
        ) == 0
        assert not state.tracing_enabled()
        assert not state.metrics_enabled()

    def test_trace_requires_out(self):
        with pytest.raises(SystemExit):
            main(["trace", "bootstrap"])


class TestTraceMetricsFlag:
    def test_prints_counters_and_embeds_snapshot(self, capsys, tmp_path):
        import json

        out = tmp_path / "trace.json"
        assert main(["trace", "bootstrap", "--out", str(out), "--metrics"]) == 0
        stdout = capsys.readouterr().out
        assert "Counters" in stdout
        assert "perf.primitives.key_switch" in stdout
        doc = json.loads(out.read_text())
        metrics = doc["otherData"]["metrics"]
        assert metrics["counters"]
        assert "perf.primitives.mult" in metrics["counters"]

    def test_without_flag_no_counters_section(self, capsys, tmp_path):
        import json

        out = tmp_path / "trace.json"
        assert main(["trace", "bootstrap", "--out", str(out)]) == 0
        assert "Counters" not in capsys.readouterr().out
        assert "metrics" not in json.loads(out.read_text())["otherData"]


class TestDiffCommand:
    def _write_report(self, tmp_path, name, config):
        import json

        report_path = tmp_path / f"{name}.json"
        assert main([
            "trace", "bootstrap", "--out", str(tmp_path / f"{name}_t.json"),
            "--report", str(report_path), "--config", config,
        ]) == 0
        return report_path

    def test_identical_reports_render_identical(self, capsys, tmp_path):
        a = self._write_report(tmp_path, "a", "none")
        b = self._write_report(tmp_path, "b", "none")
        capsys.readouterr()
        assert main(["diff", str(a), str(b)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_writes_validated_artifacts(self, capsys, tmp_path):
        import json

        from repro.obs.diff import validate_cost_diff

        a = self._write_report(tmp_path, "a", "none")
        b = self._write_report(tmp_path, "b", "all")
        capsys.readouterr()
        cost_diff = tmp_path / "cost_diff.json"
        overlay = tmp_path / "overlay.json"
        assert main([
            "diff", str(a), str(b),
            "--json", str(cost_diff), "--overlay", str(overlay),
        ]) == 0
        stdout = capsys.readouterr().out
        assert "Span path" in stdout and "key_read" in stdout
        doc = json.loads(cost_diff.read_text())
        validate_cost_diff(doc)
        assert doc["identical"] is False
        assert {e["pid"] for e in json.loads(overlay.read_text())["traceEvents"]} == {1, 2}

    def test_mismatched_workloads_need_force(self, capsys, tmp_path):
        import json

        from repro.obs.diff import WorkloadMismatchError

        a = self._write_report(tmp_path, "a", "none")
        helr = tmp_path / "helr.json"
        assert main([
            "trace", "helr", "--out", str(tmp_path / "helr_t.json"),
            "--report", str(helr),
        ]) == 0
        capsys.readouterr()
        with pytest.raises(WorkloadMismatchError):
            main(["diff", str(a), str(helr)])
        assert main(["diff", str(a), str(helr), "--force"]) == 0


class TestBenchCommand:
    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "bootstrap__optimal__all__nocache" in out
        assert "resnet__optimal__all__cache256__bts" in out

    def test_update_then_check_cycle(self, capsys, tmp_path):
        import json

        baselines = tmp_path / "baselines"
        out_dir = tmp_path / "out"
        args = ["bench", "--workloads", "micro",
                "--baseline-dir", str(baselines), "--out-dir", str(out_dir)]
        assert main(args + ["--update"]) == 0
        assert main(args + ["--check"]) == 0
        stdout = capsys.readouterr().out
        assert "baseline updated" in stdout and "bench ok" in stdout
        trajectories = list(out_dir.glob("BENCH_*.json"))
        assert trajectories
        doc = json.loads(trajectories[0].read_text())
        assert doc["schema"] == "repro.obs.bench_trajectory/v1.1"

    def test_check_against_committed_baselines(self, capsys):
        # The acceptance criterion: the committed benchmarks/baselines/
        # fixtures must gate the current model exactly.
        assert main(["bench", "--check"]) == 0
        assert "bench ok" in capsys.readouterr().out

    def test_check_fails_without_baselines(self, capsys, tmp_path):
        assert main([
            "bench", "--check", "--workloads", "micro__baseline",
            "--baseline-dir", str(tmp_path / "nothing"),
        ]) == 1
        assert "MISSING baseline" in capsys.readouterr().out

    def test_unknown_workload_filter_exits(self):
        with pytest.raises(SystemExit, match="no bench workloads match"):
            main(["bench", "--workloads", "nonexistent"])


class TestSweepCommand:
    def test_list_presets(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        assert "table5" in out and "memsim-ladder" in out

    def test_missing_preset_exits(self):
        with pytest.raises(SystemExit, match="choose a sweep preset"):
            main(["sweep"])

    def test_quick_ablation_sweep(self, capsys):
        assert main(["sweep", "ablation-cache", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "evaluated" in out and "memo hit rate" in out

    def test_json_report_is_valid(self, capsys):
        import json

        from repro.sweep import validate_sweep_report

        assert main(["sweep", "ablation-cache", "--quick", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        validate_sweep_report(report)
        assert report["sweep"] == "ablation-cache"

    def test_out_then_resume_cycle(self, capsys, tmp_path):
        import json

        path = tmp_path / "sweep_report.json"
        assert main(["sweep", "ablation-cache", "--quick",
                     "--out", str(path)]) == 0
        first = json.loads(path.read_text())
        assert main(["sweep", "ablation-cache", "--quick",
                     "--resume", str(path), "--out", str(path)]) == 0
        resumed = json.loads(path.read_text())
        out = capsys.readouterr().out
        assert "4 reused" in out
        assert resumed["points"] == first["points"]
        assert resumed["reused"] == len(first["points"])

    def test_resume_missing_file_starts_fresh(self, capsys, tmp_path):
        assert main(["sweep", "ablation-cache", "--quick",
                     "--resume", str(tmp_path / "absent.json")]) == 0
        assert "starting fresh" in capsys.readouterr().out

    def test_jobs_flag_parallel_smoke(self, capsys):
        assert main(["sweep", "ablation-cache", "--quick", "--jobs", "2"]) == 0
        assert "jobs=2" in capsys.readouterr().out

    def test_search_jobs_matches_serial(self, capsys):
        assert main(["search", "--quick", "--top", "3"]) == 0
        serial = capsys.readouterr().out
        assert main(["search", "--quick", "--top", "3", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial


class TestSweepTelemetryFlags:
    def test_events_stream_written_and_valid(self, capsys, tmp_path):
        from repro.obs.events import CHUNK_COMPLETE, RUN_END, read_events

        events_path = tmp_path / "events.jsonl"
        assert main(["sweep", "ablation-cache", "--quick",
                     "--events", str(events_path)]) == 0
        assert "wrote event log" in capsys.readouterr().out
        events = read_events(str(events_path))  # strict validation
        kinds = [e["type"] for e in events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == RUN_END
        assert any(k == CHUNK_COMPLETE for k in kinds)
        assert events[0]["data"]["command"] == "sweep ablation-cache"

    def test_report_bit_identical_across_jobs(self, capsys, tmp_path):
        import json

        from repro.obs.export import validate_run_report
        from repro.obs.telemetry import strip_volatile

        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main(["sweep", "ablation-cache", "--quick",
                     "--report", str(serial_path)]) == 0
        assert main(["sweep", "ablation-cache", "--quick", "--jobs", "2",
                     "--report", str(parallel_path)]) == 0
        capsys.readouterr()
        serial = json.loads(serial_path.read_text())
        parallel = json.loads(parallel_path.read_text())
        validate_run_report(serial)
        validate_run_report(parallel)
        assert serial["resources"]["peak_rss_bytes"] > 0
        assert json.dumps(strip_volatile(serial), sort_keys=True) == \
            json.dumps(strip_volatile(parallel), sort_keys=True)

    def test_report_has_per_point_resource_spans(self, capsys, tmp_path):
        import json

        path = tmp_path / "rr.json"
        assert main(["sweep", "ablation-cache", "--quick", "--jobs", "2",
                     "--report", str(path)]) == 0
        capsys.readouterr()
        report = json.loads(path.read_text())

        def walk(spans):
            for span in spans:
                yield span
                yield from walk(span.get("children", []))

        points = [s for s in walk(report["spans"])
                  if s["name"] == "sweep:point"]
        assert points
        assert all(s["meta"]["resource"]["rss_peak_bytes"] > 0
                   for s in points)


class TestProfileCommand:
    def test_profile_micro(self, capsys):
        assert main(["profile", "micro"]) == 0
        out = capsys.readouterr().out
        assert "process peak RSS" in out
        assert "Primitives" in out

    def test_profile_bootstrap_report(self, capsys, tmp_path):
        import json

        from repro.obs.export import validate_run_report

        path = tmp_path / "rr.json"
        assert main(["profile", "bootstrap", "--params", "optimal",
                     "--config", "all", "--report", str(path)]) == 0
        capsys.readouterr()
        report = json.loads(path.read_text())
        validate_run_report(report)
        assert report["command"] == "profile bootstrap"
        assert report["resources"]["peak_rss_bytes"] > 0

    def test_profile_json(self, capsys):
        import json

        assert main(["profile", "micro", "--json", "--depth", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "micro"
        assert payload["resources"]["wall_seconds"] > 0
        assert payload["spans"]
        assert all(s["depth"] < 2 for s in payload["spans"])

    def test_profile_no_alloc(self, capsys):
        assert main(["profile", "micro", "--no-alloc", "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["resources"]["alloc_peak_bytes"] == 0


class TestTopAndDashCommands:
    def _events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        assert main(["sweep", "ablation-cache", "--quick", "--jobs", "2",
                     "--events", str(path)]) == 0
        return str(path)

    def test_top_renders_finished_sweep(self, capsys, tmp_path):
        events = self._events(tmp_path)
        capsys.readouterr()
        assert main(["top", events]) == 0
        out = capsys.readouterr().out
        assert "[finished]" in out
        assert "points" in out and "memo hit rate" in out
        assert "pid" in out

    def test_top_tolerates_torn_tail(self, capsys, tmp_path):
        events = self._events(tmp_path)
        with open(events, "a") as handle:
            handle.write('{"torn')
        capsys.readouterr()
        assert main(["top", events]) == 0
        assert "[finished]" in capsys.readouterr().out

    def test_dash_writes_selfcontained_html(self, capsys, tmp_path):
        events = self._events(tmp_path)
        out_path = tmp_path / "dash.html"
        capsys.readouterr()
        assert main(["dash", events, "--out", str(out_path)]) == 0
        assert "wrote dashboard" in capsys.readouterr().out
        html = out_path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "http://" not in html and "https://" not in html
        assert "<svg" in html


class TestServeCommand:
    def test_list_scenarios(self, capsys):
        assert main(["serve", "--list"]) == 0
        out = capsys.readouterr().out.split()
        assert "micro" in out and "mixed" in out

    def test_micro_human_output(self, capsys):
        assert main(["serve", "micro", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "serve micro" in out
        assert "bts-micro" in out
        assert "rps" in out and "ksk saved" in out
        # Per-tenant SLA lines: alpha declares a target, beta does not.
        assert "alpha" in out and "beta" in out

    def test_json_output_is_a_valid_report(self, capsys):
        import json as json_module

        from repro.serve import validate_serve_report

        assert main(["serve", "micro", "--json"]) == 0
        report = json_module.loads(capsys.readouterr().out)
        validate_serve_report(report)
        assert report["scenario"] == "micro"

    def test_out_writes_validated_report(self, capsys, tmp_path):
        from repro.serve import load_serve_report

        path = tmp_path / "serve_report.json"
        assert main(["serve", "micro", "--out", str(path)]) == 0
        report = load_serve_report(str(path))
        assert report is not None and report["seed"] == 0

    def test_same_seed_reports_are_byte_identical_sans_provenance(
        self, capsys, tmp_path
    ):
        import json as json_module

        paths = [str(tmp_path / name) for name in ("a.json", "b.json")]
        for path in paths:
            assert main(["serve", "micro", "--out", path]) == 0
        capsys.readouterr()
        payloads = []
        for path in paths:
            with open(path) as handle:
                report = json_module.load(handle)
            report.pop("provenance")
            payloads.append(
                json_module.dumps(report, indent=1, sort_keys=True)
            )
        assert payloads[0] == payloads[1]

    def test_jobs_two_matches_serial(self, capsys, tmp_path):
        import json as json_module

        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert main(["serve", "micro", "--out", str(serial)]) == 0
        assert (
            main(["serve", "micro", "--jobs", "2", "--out", str(parallel)])
            == 0
        )
        capsys.readouterr()

        def stripped(path):
            with open(path) as handle:
                report = json_module.load(handle)
            report.pop("provenance")
            return report

        assert stripped(serial) == stripped(parallel)

    def test_events_log_is_valid(self, capsys, tmp_path):
        import json as json_module

        events = tmp_path / "events.jsonl"
        assert main(["serve", "micro", "--events", str(events)]) == 0
        lines = [
            json_module.loads(line)
            for line in events.read_text().splitlines()
        ]
        assert lines
        assert all(
            line["schema"] == "repro.obs.events/v1" for line in lines
        )
        assert lines[-1]["type"] == "run_end"

    def test_report_writes_validated_run_report(self, capsys, tmp_path):
        import json as json_module

        from repro.obs.export import validate_run_report

        report_path = tmp_path / "run_report.json"
        assert (
            main(["serve", "micro", "--report", str(report_path)]) == 0
        )
        with open(report_path) as handle:
            validate_run_report(json_module.load(handle))

    def test_unknown_scenario_exits_with_guidance(self, capsys):
        with pytest.raises(SystemExit, match="choose a serving scenario"):
            main(["serve", "does-not-exist"])

    def test_missing_scenario_exits_with_guidance(self):
        with pytest.raises(SystemExit, match="choose a serving scenario"):
            main(["serve"])
