import pytest

from repro.cli import main


class TestCliCommands:
    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Rotate" in out and "Bootstrap" in out

    def test_table4_optimized_config(self, capsys):
        assert main(["table4", "--params", "optimal", "--config", "all"]) == 0
        assert "Bootstrap" in capsys.readouterr().out

    def test_table5_quick(self, capsys):
        assert main(["table5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Baseline" in out and "Search optimal" in out

    def test_table6(self, capsys):
        assert main(["table6"]) == 0
        out = capsys.readouterr().out
        assert "CraterLake" in out and "MAD-32" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        assert "saved" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Limb Re-order" in out

    def test_fig3(self, capsys):
        assert main(["fig3", "--params", "baseline"]) == 0
        assert "Key Compression" in capsys.readouterr().out

    def test_fig6(self, capsys):
        assert main(["fig6", "--workload", "resnet", "--design", "BTS",
                     "--caches", "32"]) == 0
        assert "BTS" in capsys.readouterr().out

    def test_bootstrap_breakdown(self, capsys):
        assert main(["bootstrap", "--params", "optimal", "--config", "all",
                     "--cache-mb", "32"]) == 0
        out = capsys.readouterr().out
        assert "CoeffToSlot" in out and "Total" in out

    def test_search_quick(self, capsys):
        assert main(["search", "--quick", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("#") == 2

    def test_ledger(self, capsys):
        assert main(["ledger", "--params", "optimal", "--config", "all"]) == 0
        out = capsys.readouterr().out
        assert "EvalMod:Mult" in out and "Total" in out

    def test_balance(self, capsys):
        assert main(["balance"]) == 0
        out = capsys.readouterr().out
        assert "MAD-32" in out and "balance" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
