"""TraceRecorder / Trace: event emission, block identity, geometry."""

import pytest

from repro.memsim.trace import (
    CT,
    KEY,
    PT,
    READ,
    SCRATCH,
    WRITE,
    Access,
    Buffer,
    BulkAccess,
    FlushEvent,
    PinEvent,
    TraceRecorder,
)

BLOCK = 64


def recorder():
    return TraceRecorder(block_bytes=BLOCK, label="t")


class TestBuffer:
    def test_indexing_maps_to_block_ids(self):
        buf = Buffer("b", start=10, limbs=3)
        assert [buf[0], buf[1], buf[2]] == [10, 11, 12]
        assert list(buf.blocks()) == [10, 11, 12]
        assert len(buf) == 3

    def test_out_of_range_index_raises(self):
        buf = Buffer("b", start=0, limbs=2)
        with pytest.raises(IndexError):
            buf[2]
        with pytest.raises(IndexError):
            buf[-1]

    def test_negative_limbs_rejected(self):
        with pytest.raises(ValueError):
            Buffer("b", start=0, limbs=-1)


class TestAllocation:
    def test_buffers_never_overlap(self):
        rec = recorder()
        a = rec.alloc("a", 4)
        b = rec.alloc("b", 2)
        assert set(a.blocks()).isdisjoint(b.blocks())
        assert b.start == a.start + 4

    def test_duplicate_labels_get_occurrence_suffixes(self):
        rec = recorder()
        rec.alloc("x", 1)
        second = rec.alloc("x", 1)
        third = rec.alloc("x", 1)
        assert second.label == "x#2"
        assert third.label == "x#3"
        assert set(rec.finish().buffers) == {"x", "x#2", "x#3"}

    def test_nonpositive_block_bytes_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder(block_bytes=0)


class TestEmission:
    def test_read_write_scratch_flags(self):
        rec = recorder()
        buf = rec.alloc("b", 1)
        rec.read(buf[0])
        rec.read(buf[0], allocate=False)
        rec.write(buf[0])
        rec.write(buf[0], resident=True)
        rec.scratch(buf[0])
        events = rec.finish().events
        assert events[0] == Access(READ, CT, buf[0], False, True)
        assert events[1] == Access(READ, CT, buf[0], False, False)
        assert events[2] == Access(WRITE, CT, buf[0], False, True)
        assert events[3] == Access(WRITE, CT, buf[0], True, True)
        assert events[4].kind == SCRATCH

    def test_buffer_passes_are_ascending_one_event_per_limb(self):
        rec = recorder()
        buf = rec.alloc("b", 3)
        rec.read_buffer(buf)
        rec.write_buffer(buf)
        events = rec.finish().events
        assert [e.block for e in events[:3]] == list(buf.blocks())
        assert [e.kind for e in events[3:]] == [WRITE] * 3

    def test_read_stream_emits_bulk_bytes(self):
        rec = recorder()
        rec.read_stream(KEY, 5)
        rec.read_stream(PT, 2)
        events = rec.finish().events
        assert events[0] == BulkAccess(READ, KEY, 5 * BLOCK)
        assert events[1] == BulkAccess(READ, PT, 2 * BLOCK)

    def test_read_stream_validates_stream_and_skips_empty(self):
        rec = recorder()
        with pytest.raises(ValueError):
            rec.read_stream("bogus", 1)
        rec.read_stream(KEY, 0)
        assert rec.finish().events == []

    def test_pin_unpin_and_flush_round_trip(self):
        rec = recorder()
        buf = rec.alloc("b", 2)
        rec.pin(buf)
        rec.unpin(buf)
        rec.flush(buf)
        events = rec.finish().events
        blocks = tuple(buf.blocks())
        assert events[0] == PinEvent(blocks, True)
        assert events[1] == PinEvent(blocks, False)
        assert events[2] == FlushEvent(blocks)

    def test_empty_pin_and_flush_emit_nothing(self):
        rec = recorder()
        empty = rec.alloc("e", 0)
        rec.pin(empty)
        rec.flush(empty)
        rec.flush_blocks(())
        rec.pin_blocks(())
        assert rec.finish().events == []

    def test_pin_blocks_accepts_non_contiguous_sets(self):
        rec = recorder()
        rec.pin_blocks((7, 3, 11))
        event = rec.finish().events[0]
        assert event == PinEvent((7, 3, 11), True)


class TestTrace:
    def test_logical_bytes_counts_blocks_and_bulk(self):
        rec = recorder()
        buf = rec.alloc("b", 2)
        rec.read_buffer(buf)
        rec.write(buf[0])
        rec.read_stream(KEY, 4)
        rec.pin(buf)  # non-traffic events contribute nothing
        trace = rec.finish()
        assert trace.logical_bytes() == 3 * BLOCK + 4 * BLOCK

    def test_finish_is_repeatable_and_snapshots(self):
        rec = recorder()
        buf = rec.alloc("b", 1)
        rec.read(buf[0])
        first = rec.finish()
        rec.read(buf[0])
        second = rec.finish()
        assert len(first.events) == 1
        assert len(second.events) == 2

    def test_generation_is_deterministic(self):
        def build():
            rec = recorder()
            buf = rec.alloc("b", 3)
            rec.read_buffer(buf)
            rec.pin(buf)
            rec.write_buffer(buf, resident=True)
            rec.flush(buf)
            return rec.finish()

        assert build().events == build().events
