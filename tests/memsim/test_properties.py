"""Property-based invariants of the replay core (hypothesis).

* Belady (offline MIN) never takes more read misses than LRU.
* LRU traffic is monotone non-increasing in capacity (stack property).
* Replay is bit-identical across repeated runs (determinism).
"""

from hypothesis import given, settings, strategies as st

from repro.memsim.policies import make_policy
from repro.memsim.simulator import MemorySimulator
from repro.memsim.trace import TraceRecorder

BLOCK = 64

#: (op, limb) pairs over a small buffer; op space spans every event kind.
_FULL_OPS = st.lists(
    st.tuples(
        st.sampled_from(["read", "stream", "write", "wres", "scratch", "flush"]),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=80,
)

#: Demand-paging subset (allocating reads + plain writes): the classical
#: setting in which Belady's MIN optimality is proven.
_DEMAND_OPS = st.lists(
    st.tuples(
        st.sampled_from(["read", "write"]),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=80,
)


def build_trace(ops):
    rec = TraceRecorder(block_bytes=BLOCK, label="prop")
    buf = rec.alloc("b", 10)
    for op, limb in ops:
        if op == "read":
            rec.read(buf[limb])
        elif op == "stream":
            rec.read(buf[limb], allocate=False)
        elif op == "write":
            rec.write(buf[limb])
        elif op == "wres":
            rec.write(buf[limb], resident=True)
        elif op == "scratch":
            rec.scratch(buf[limb])
        else:
            rec.flush_blocks((buf[limb],))
    return rec.finish()


def replay(trace, blocks, policy):
    return MemorySimulator(blocks * BLOCK, make_policy(policy)).replay(trace)


class TestBeladyOptimality:
    @given(ops=_DEMAND_OPS, capacity=st.integers(min_value=1, max_value=12))
    @settings(max_examples=120, deadline=None)
    def test_belady_never_worse_than_lru(self, ops, capacity):
        trace = build_trace(ops)
        belady = replay(trace, capacity, "belady")
        lru = replay(trace, capacity, "lru")
        assert belady.stats.misses <= lru.stats.misses
        assert belady.traffic.ct_read <= lru.traffic.ct_read


class TestLRUMonotonicity:
    @given(
        ops=_FULL_OPS,
        small=st.integers(min_value=0, max_value=10),
        extra=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=120, deadline=None)
    def test_traffic_monotone_non_increasing_in_capacity(
        self, ops, small, extra
    ):
        trace = build_trace(ops)
        smaller = replay(trace, small, "lru")
        larger = replay(trace, small + extra, "lru")
        assert larger.traffic.ct_read <= smaller.traffic.ct_read
        assert larger.stats.misses <= smaller.stats.misses
        # Write-through: write traffic is capacity-independent.
        assert larger.traffic.ct_write == smaller.traffic.ct_write


class TestDeterminism:
    @given(
        ops=_FULL_OPS,
        capacity=st.integers(min_value=0, max_value=12),
        policy=st.sampled_from(["lru", "belady", "pin"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_replay_is_bit_identical(self, ops, capacity, policy):
        trace = build_trace(ops)
        first = replay(trace, capacity, policy)
        second = replay(trace, capacity, policy)
        assert first.traffic == second.traffic
        assert first.stats == second.stats

    @given(ops=_FULL_OPS)
    @settings(max_examples=40, deadline=None)
    def test_trace_generation_is_bit_identical(self, ops):
        assert build_trace(ops).events == build_trace(ops).events
