"""Replacement policies: LRU order, Belady lookahead, pin-aware eviction."""

import pytest

from repro.memsim.policies import (
    NEVER,
    POLICIES,
    BeladyPolicy,
    LRUPolicy,
    PinAwarePolicy,
    make_policy,
)


class TestFactory:
    def test_make_policy_by_name(self):
        for name, cls in POLICIES.items():
            policy = make_policy(name)
            assert isinstance(policy, cls)
            assert policy.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_policy("fifo")

    def test_only_belady_needs_future(self):
        assert BeladyPolicy.needs_future
        assert not LRUPolicy.needs_future
        assert not PinAwarePolicy.needs_future


class TestLRU:
    def test_evicts_least_recently_used(self):
        lru = LRUPolicy()
        lru.reset(2)
        assert lru.insert(1, NEVER) is None
        assert lru.insert(2, NEVER) is None
        lru.touch(1, NEVER)  # 2 is now the LRU block
        assert lru.insert(3, NEVER) == 2
        assert lru.contains(1) and lru.contains(3)

    def test_zero_capacity_never_holds_anything(self):
        lru = LRUPolicy()
        lru.reset(0)
        assert lru.insert(1, NEVER) is None
        assert not lru.contains(1)
        assert lru.resident() == 0

    def test_discard_is_not_an_eviction(self):
        lru = LRUPolicy()
        lru.reset(2)
        lru.insert(1, NEVER)
        lru.discard(1)
        lru.discard(99)  # absent: no-op
        assert lru.resident() == 0

    def test_reset_clears_contents(self):
        lru = LRUPolicy()
        lru.reset(2)
        lru.insert(1, NEVER)
        lru.reset(2)
        assert not lru.contains(1)


class TestBelady:
    def test_evicts_farthest_next_use(self):
        belady = BeladyPolicy()
        belady.reset(2)
        belady.insert(1, 10)
        belady.insert(2, 5)
        assert belady.insert(3, 7) == 1  # block 1 is read farthest away
        assert belady.contains(2) and belady.contains(3)

    def test_never_read_again_is_first_victim(self):
        belady = BeladyPolicy()
        belady.reset(2)
        belady.insert(1, NEVER)
        belady.insert(2, 3)
        assert belady.insert(3, 4) == 1

    def test_ties_break_toward_larger_block_id(self):
        belady = BeladyPolicy()
        belady.reset(2)
        belady.insert(1, NEVER)
        belady.insert(2, NEVER)
        assert belady.insert(3, 1) == 2

    def test_touch_updates_next_use(self):
        belady = BeladyPolicy()
        belady.reset(2)
        belady.insert(1, 5)
        belady.insert(2, 6)
        belady.touch(1, NEVER)  # block 1 will never be read again
        assert belady.insert(3, 4) == 1


class TestPinAware:
    def test_skips_pinned_victims(self):
        pin = PinAwarePolicy()
        pin.reset(2)
        pin.insert(1, NEVER)
        pin.insert(2, NEVER)
        pin.pin([1])
        # 1 is the LRU block but pinned, so 2 must go.
        assert pin.insert(3, NEVER) == 2
        assert pin.contains(1)
        assert pin.pin_failures == 0

    def test_all_pinned_forces_eviction_and_counts_failure(self):
        pin = PinAwarePolicy()
        pin.reset(2)
        pin.insert(1, NEVER)
        pin.insert(2, NEVER)
        pin.pin([1, 2, 3])
        assert pin.insert(3, NEVER) == 1  # forced: evicts plain LRU
        assert pin.pin_failures == 1

    def test_unpin_restores_eviction_eligibility(self):
        pin = PinAwarePolicy()
        pin.reset(2)
        pin.insert(1, NEVER)
        pin.insert(2, NEVER)
        pin.pin([1])
        pin.unpin([1])
        assert pin.insert(3, NEVER) == 1
        assert pin.pin_failures == 0

    def test_reset_clears_pins_and_failures(self):
        pin = PinAwarePolicy()
        pin.reset(1)
        pin.insert(1, NEVER)
        pin.pin([1, 2])
        pin.insert(2, NEVER)
        assert pin.pin_failures == 1
        pin.reset(1)
        assert pin.pin_failures == 0
        pin.insert(3, NEVER)
        assert pin.insert(4, NEVER) == 3  # old pins are gone
        assert pin.pin_failures == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PinAwarePolicy().reset(-1)
