"""`python -m repro memsim` command wiring."""

import json

import pytest

from repro.cli import main
from repro.memsim.validate import validate_memsim_report


class TestMemsimCommand:
    def test_single_point_run_passes(self, capsys):
        code = main(
            ["memsim", "--cache-mb", "192", "--config", "caching",
             "--primitive", "mult", "--primitive", "rotate"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mult" in out and "rotate" in out
        assert "overall: PASS" in out

    def test_json_output_validates_against_schema(self, capsys):
        code = main(
            ["memsim", "--json", "--cache-mb", "192", "--config", "caching",
             "--primitive", "key_switch"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        validate_memsim_report(report)
        assert report["passed"]

    def test_fit_break_exits_nonzero(self, capsys):
        # 8 MB cannot hold the alpha-limb working set: single-point runs
        # report the break and fail loudly (no expected-break whitelist
        # outside the ladder).
        code = main(
            ["memsim", "--cache-mb", "8", "--config", "caching",
             "--primitive", "mod_up"]
        )
        assert code == 1
        assert "FIT BREAK" in capsys.readouterr().out

    def test_unknown_primitive_rejected(self):
        with pytest.raises(SystemExit, match="unknown primitive"):
            main(["memsim", "--primitive", "bogus"])

    def test_out_writes_report_file(self, tmp_path, capsys):
        path = tmp_path / "memsim_report.json"
        code = main(
            ["memsim", "--cache-mb", "192", "--config", "caching",
             "--primitive", "decomp", "--out", str(path)]
        )
        assert code == 0
        with open(path) as handle:
            validate_memsim_report(json.load(handle))

    def test_policy_flag_accepts_lru(self, capsys):
        code = main(
            ["memsim", "--policy", "lru", "--cache-mb", "2",
             "--config", "none", "--primitive", "decomp"]
        )
        assert code == 0
