"""MemorySimulator replay semantics against hand-built traces."""

import pytest

from repro.memsim.policies import make_policy
from repro.memsim.simulator import MemorySimulator
from repro.memsim.trace import KEY, PT, TraceRecorder

BLOCK = 64


def sim(blocks, policy="lru"):
    return MemorySimulator(blocks * BLOCK, make_policy(policy))


class TestGeometry:
    def test_capacity_floor_divides_like_cache_model(self):
        assert MemorySimulator(BLOCK * 3 + 1).capacity_blocks(BLOCK) == 3
        assert MemorySimulator(BLOCK - 1).capacity_blocks(BLOCK) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemorySimulator(-1)

    def test_default_policy_is_lru(self):
        assert MemorySimulator(BLOCK).policy.name == "lru"


class TestReads:
    def test_cold_miss_then_hit(self):
        rec = TraceRecorder(block_bytes=BLOCK)
        buf = rec.alloc("b", 1)
        rec.read(buf[0])
        rec.read(buf[0])
        trace = rec.finish()
        result = sim(4).replay(trace)
        assert result.stats.misses == 1
        assert result.stats.hits == 1
        assert result.traffic.ct_read == BLOCK
        assert result.stats.hit_rate == 0.5

    def test_streaming_read_never_allocates(self):
        rec = TraceRecorder(block_bytes=BLOCK)
        buf = rec.alloc("b", 1)
        rec.read(buf[0], allocate=False)
        rec.read(buf[0], allocate=False)
        result = sim(4).replay(rec.finish())
        assert result.stats.misses == 2
        assert result.traffic.ct_read == 2 * BLOCK

    def test_streaming_read_still_hits_resident_blocks(self):
        rec = TraceRecorder(block_bytes=BLOCK)
        buf = rec.alloc("b", 1)
        rec.read(buf[0])  # allocates
        rec.read(buf[0], allocate=False)
        result = sim(4).replay(rec.finish())
        assert result.stats.hits == 1
        assert result.traffic.ct_read == BLOCK

    def test_zero_capacity_counts_every_read(self):
        rec = TraceRecorder(block_bytes=BLOCK)
        buf = rec.alloc("b", 1)
        rec.read(buf[0])
        rec.read(buf[0])
        result = sim(0).replay(rec.finish())
        assert result.stats.misses == 2
        assert result.traffic.ct_read == 2 * BLOCK


class TestWrites:
    def test_writes_are_write_through(self):
        rec = TraceRecorder(block_bytes=BLOCK)
        buf = rec.alloc("b", 1)
        rec.write(buf[0])
        rec.write(buf[0])
        result = sim(4).replay(rec.finish())
        assert result.traffic.ct_write == 2 * BLOCK

    def test_non_resident_write_does_not_allocate(self):
        rec = TraceRecorder(block_bytes=BLOCK)
        buf = rec.alloc("b", 1)
        rec.write(buf[0])
        rec.read(buf[0])  # must come back from DRAM
        result = sim(4).replay(rec.finish())
        assert result.traffic.ct_read == BLOCK

    def test_resident_write_allocates(self):
        rec = TraceRecorder(block_bytes=BLOCK)
        buf = rec.alloc("b", 1)
        rec.write(buf[0], resident=True)
        rec.read(buf[0])  # served from cache
        result = sim(4).replay(rec.finish())
        assert result.traffic.ct_read == 0
        assert result.traffic.ct_write == BLOCK


class TestScratchAndFlush:
    def test_scratch_allocates_without_traffic(self):
        rec = TraceRecorder(block_bytes=BLOCK)
        buf = rec.alloc("b", 1)
        rec.scratch(buf[0])
        rec.read(buf[0])
        result = sim(4).replay(rec.finish())
        assert result.traffic.ct_read == 0
        assert result.traffic.ct_write == 0

    def test_evicted_scratch_is_refetched_from_dram(self):
        rec = TraceRecorder(block_bytes=BLOCK)
        acc = rec.alloc("acc", 1)
        noise = rec.alloc("noise", 2)
        rec.scratch(acc[0])
        rec.read_buffer(noise)  # evicts the accumulator (capacity 2)
        rec.read(acc[0])
        result = sim(2).replay(rec.finish())
        assert result.traffic.ct_read == 3 * BLOCK  # noise x2 + refill

    def test_flush_drops_blocks_without_traffic(self):
        rec = TraceRecorder(block_bytes=BLOCK)
        buf = rec.alloc("b", 1)
        rec.read(buf[0])
        rec.flush(buf)
        rec.read(buf[0])
        result = sim(4).replay(rec.finish())
        assert result.stats.misses == 2
        assert result.stats.evictions == 0


class TestBulkAndPins:
    def test_bulk_streams_bypass_the_cache(self):
        rec = TraceRecorder(block_bytes=BLOCK)
        rec.read_stream(KEY, 3)
        rec.read_stream(PT, 2)
        result = sim(1).replay(rec.finish())
        assert result.traffic.key_read == 3 * BLOCK
        assert result.traffic.pt_read == 2 * BLOCK
        assert result.stats.accesses == 0  # no cache interaction

    def test_pins_protect_blocks_under_pin_policy(self):
        rec = TraceRecorder(block_bytes=BLOCK)
        hot = rec.alloc("hot", 1)
        cold = rec.alloc("cold", 2)
        rec.read(hot[0])
        rec.pin(hot)
        rec.read_buffer(cold)
        rec.read(hot[0])  # still resident despite the cold sweep
        result = sim(2, "pin").replay(rec.finish())
        assert result.stats.hits == 1
        assert result.pin_failures == 0

    def test_overcommitted_pins_are_counted(self):
        rec = TraceRecorder(block_bytes=BLOCK)
        buf = rec.alloc("b", 3)
        rec.pin(buf)
        rec.read_buffer(buf)
        result = sim(2, "pin").replay(rec.finish())
        assert result.pin_failures > 0

    def test_lru_ignores_pins(self):
        rec = TraceRecorder(block_bytes=BLOCK)
        buf = rec.alloc("b", 3)
        rec.pin(buf)
        rec.read_buffer(buf)
        result = sim(2, "lru").replay(rec.finish())
        assert result.pin_failures == 0


class TestResult:
    def test_result_records_run_geometry(self):
        rec = TraceRecorder(block_bytes=BLOCK)
        buf = rec.alloc("b", 1)
        rec.read(buf[0])
        result = sim(5, "belady").replay(rec.finish())
        assert result.capacity_blocks == 5
        assert result.block_bytes == BLOCK
        assert result.policy == "belady"
