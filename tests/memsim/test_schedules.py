"""Schedule generators: simulated traffic == analytical claims.

The load-bearing invariant of the whole package: for every primitive and
every Fig. 2 rung, replaying the generated trace through the pin-aware
policy at a capacity where the rung's working set genuinely fits must
reproduce the analytical per-stream DRAM bytes *bit-exactly* — the
schedules encode the same access structure the formulas count.
"""

import pytest

from repro.memsim.policies import make_policy
from repro.memsim.schedules import PRIMITIVES, ScheduleBuilder
from repro.memsim.simulator import MemorySimulator
from repro.params import BASELINE_JUNG, MAD_OPTIMAL
from repro.perf.bootstrap import BootstrapModel
from repro.perf.optimizations import ALGORITHMIC_LADDER, CACHING_LADDER

#: Large enough for every rung's working set (rung 5 needs ~176 MB).
HUGE_MB = 1024.0
MB = 10**6

RUNG_IDS = [label for label, _ in CACHING_LADDER]


def replay(schedule, cache_mb=HUGE_MB, policy="pin"):
    simulator = MemorySimulator(int(cache_mb * MB), make_policy(policy))
    return simulator.replay(schedule.trace)


def assert_exact(schedule, cache_mb=HUGE_MB):
    result = replay(schedule, cache_mb)
    assert result.traffic == schedule.analytical.traffic, (
        f"{schedule.label}: simulated {result.traffic} != "
        f"analytical {schedule.analytical.traffic}"
    )


@pytest.mark.parametrize(
    "config", [c for _, c in CACHING_LADDER], ids=RUNG_IDS
)
@pytest.mark.parametrize(
    "name",
    [
        "decomp",
        "mod_up",
        "ksk_inner_product",
        "mod_down",
        "key_switch",
        "mult",
        "rotate",
        "rescale",
        "pt_mult",
        "add",
        "automorph",
    ],
)
class TestPrimitiveExactness:
    def test_simulated_equals_analytical_when_fitting(self, name, config):
        builder = ScheduleBuilder(BASELINE_JUNG, config)
        schedule = getattr(builder, name)(BASELINE_JUNG.max_limbs)
        assert_exact(schedule)


@pytest.mark.parametrize(
    "config", [c for _, c in CACHING_LADDER], ids=RUNG_IDS
)
class TestMatVecExactness:
    def test_pt_mat_vec_mult_exact_when_fitting(self, config):
        builder = ScheduleBuilder(BASELINE_JUNG, config)
        schedule = builder.pt_mat_vec_mult(
            BASELINE_JUNG.max_limbs, builder.dft_diagonals()
        )
        assert_exact(schedule)


class TestAlgorithmicConfigs:
    """The 'all' config (merge + hoist + compression) must also replay exact."""

    @pytest.mark.parametrize("name", ["mult", "rotate", "key_switch"])
    def test_all_config_primitives(self, name):
        _, config = ALGORITHMIC_LADDER[-1]
        builder = ScheduleBuilder(BASELINE_JUNG, config)
        assert_exact(getattr(builder, name)(BASELINE_JUNG.max_limbs))

    def test_all_config_matvec_uses_hoisting(self):
        _, config = ALGORITHMIC_LADDER[-1]
        builder = ScheduleBuilder(BASELINE_JUNG, config)
        schedule = builder.pt_mat_vec_mult(
            BASELINE_JUNG.max_limbs, builder.dft_diagonals()
        )
        assert_exact(schedule)

    def test_optimal_params_mult_exact(self):
        _, config = ALGORITHMIC_LADDER[-1]
        builder = ScheduleBuilder(MAD_OPTIMAL, config)
        assert_exact(builder.mult(MAD_OPTIMAL.max_limbs))


class TestModRaise:
    @pytest.mark.parametrize(
        "config", [c for _, c in CACHING_LADDER], ids=RUNG_IDS
    )
    def test_mod_raise_exact(self, config):
        builder = ScheduleBuilder(BASELINE_JUNG, config)
        assert_exact(builder.mod_raise(2, BASELINE_JUNG.max_limbs))


class TestBootstrapUnits:
    @pytest.mark.parametrize(
        "config", [c for _, c in CACHING_LADDER], ids=RUNG_IDS
    )
    def test_unit_analytical_sum_matches_bootstrap_ledger(self, config):
        """The schedule walk must mirror BootstrapModel.ledger() exactly."""
        builder = ScheduleBuilder(BASELINE_JUNG, config)
        total = sum(
            (
                unit.analytical.scaled(unit.scale)
                for unit in builder.bootstrap_units()
            ),
            start=type(builder.bootstrap_units()[0].analytical)(),
        )
        ledger_total = BootstrapModel(BASELINE_JUNG, config).ledger().total
        assert total.traffic == ledger_total.traffic

    def test_units_replay_exact_at_huge_cache(self):
        # One rung suffices here; the full sweep runs in the validation
        # harness (tests/memsim/test_validate.py + benchmarks).
        _, config = CACHING_LADDER[-1]
        builder = ScheduleBuilder(BASELINE_JUNG, config)
        for unit in builder.bootstrap_units():
            result = replay(unit)
            assert result.traffic == unit.analytical.traffic, unit.label

    def test_units_cover_all_phases(self):
        _, config = CACHING_LADDER[0]
        phases = {
            unit.phase
            for unit in ScheduleBuilder(BASELINE_JUNG, config).bootstrap_units()
        }
        assert phases == {"ModRaise", "CoeffToSlot", "EvalMod", "SlotToCoeff"}


class TestRegistryAndDeterminism:
    def test_primitives_registry_builds_every_schedule(self):
        _, config = CACHING_LADDER[-1]
        builder = ScheduleBuilder(BASELINE_JUNG, config)
        for name, method in PRIMITIVES.items():
            schedule = getattr(builder, method)(BASELINE_JUNG.max_limbs)
            assert schedule.label
            assert len(schedule.trace.events) > 0, name

    def test_schedule_generation_is_bit_identical(self):
        _, config = CACHING_LADDER[-1]

        def events():
            builder = ScheduleBuilder(BASELINE_JUNG, config)
            return builder.mult(BASELINE_JUNG.max_limbs).trace.events

        assert events() == events()

    def test_level_dependence_monotone(self):
        """Lower levels move fewer bytes (sanity vs the analytical model)."""
        _, config = CACHING_LADDER[-1]
        builder = ScheduleBuilder(BASELINE_JUNG, config)
        high = replay(builder.mult(BASELINE_JUNG.max_limbs)).traffic.total
        low = replay(builder.mult(10)).traffic.total
        assert low < high
