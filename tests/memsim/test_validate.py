"""Differential validation harness: comparison, report, schema."""

import pytest

from repro.memsim.accounting import SimStats
from repro.memsim.simulator import SimResult
from repro.memsim.validate import (
    DEFAULT_TOLERANCE,
    EXPECTED_FIT_BREAKS,
    LADDER_PRIMITIVES,
    LADDER_RUNS,
    SCHEMA_ID,
    compare_traffic,
    render_report,
    run_validation,
    validate_memsim_report,
    validate_primitive,
)
from repro.memsim.schedules import ScheduleBuilder
from repro.params import BASELINE_JUNG
from repro.perf.events import MemTraffic
from repro.perf.optimizations import MADConfig


def result_with(traffic, pin_failures=0):
    return SimResult(
        traffic=traffic,
        stats=SimStats(pin_failures=pin_failures),
        capacity_blocks=30,
        block_bytes=BASELINE_JUNG.limb_bytes,
        policy="pin",
    )


class TestCompareTraffic:
    def test_exact_match_is_within_tolerance(self):
        traffic = MemTraffic(ct_read=100, ct_write=50, key_read=25, pt_read=5)
        out = compare_traffic(traffic, result_with(traffic), 0.05)
        assert out["within_tolerance"]
        assert not out["fit_broken"]
        assert out["max_abs_rel_error"] == 0.0
        for field in ("ct_read", "ct_write", "key_read", "pt_read"):
            assert out["streams"][field]["rel_error"] == 0.0

    def test_excess_simulated_traffic_breaks_the_fit(self):
        analytical = MemTraffic(ct_read=100)
        simulated = MemTraffic(ct_read=150)
        out = compare_traffic(analytical, result_with(simulated), 0.05)
        assert out["fit_broken"]
        assert not out["within_tolerance"]
        assert out["streams"]["ct_read"]["rel_error"] == pytest.approx(0.5)

    def test_simulated_below_analytical_is_not_a_fit_break(self):
        # Under-counting means the schedule is *wrong* (out of tolerance)
        # but not that a fit threshold broke.
        analytical = MemTraffic(ct_read=100)
        simulated = MemTraffic(ct_read=10)
        out = compare_traffic(analytical, result_with(simulated), 0.05)
        assert not out["fit_broken"]
        assert not out["within_tolerance"]

    def test_zero_analytical_nonzero_simulated_flagged(self):
        analytical = MemTraffic()
        simulated = MemTraffic(ct_read=1)
        out = compare_traffic(analytical, result_with(simulated), 0.05)
        assert out["fit_broken"]
        assert out["streams"]["ct_read"]["rel_error"] == -1.0  # inf marker

    def test_pin_failures_propagate(self):
        traffic = MemTraffic(ct_read=1)
        out = compare_traffic(traffic, result_with(traffic, 7), 0.05)
        assert out["pin_failures"] == 7


class TestValidatePrimitive:
    def test_fitting_primitive_passes(self):
        builder = ScheduleBuilder(BASELINE_JUNG, MADConfig.caching_only())
        entry = validate_primitive(builder, "mult", 192.0)
        assert entry["passed"]
        assert not entry["fit_broken"]
        assert entry["max_abs_rel_error"] <= DEFAULT_TOLERANCE

    def test_expected_break_must_materialize(self):
        builder = ScheduleBuilder(BASELINE_JUNG, MADConfig.caching_only())
        # mult fits comfortably at 192 MB: a stale break expectation fails.
        entry = validate_primitive(
            builder, "mult", 192.0, expected_break_reason="stale"
        )
        assert not entry["passed"]
        assert entry["expected_fit_break"]

    def test_known_matvec_break_at_32mb(self):
        """The documented O(beta) x limb-reorder composition break."""
        builder = ScheduleBuilder(BASELINE_JUNG, MADConfig.caching_only())
        entry = validate_primitive(
            builder,
            "pt_mat_vec_mult",
            32.0,
            expected_break_reason=EXPECTED_FIT_BREAKS[
                ("Limb Re-order", 32.0, "pt_mat_vec_mult")
            ],
        )
        assert entry["passed"]  # expected and it materialized
        assert entry["fit_broken"]
        assert entry["pin_failures"] > 0


class TestRunValidation:
    @pytest.fixture(scope="class")
    def report(self):
        return run_validation()

    def test_full_ladder_passes(self, report):
        assert report["passed"]
        assert report["schema"] == SCHEMA_ID
        assert len(report["runs"]) == len(LADDER_RUNS)

    def test_every_ladder_primitive_present(self, report):
        for run in report["runs"]:
            names = {e["primitive"] for e in run["primitives"]}
            assert names == set(LADDER_PRIMITIVES)

    def test_expected_breaks_are_reported_as_breaks(self, report):
        rung5 = next(
            run
            for run in report["runs"]
            if run["label"] == "Limb Re-order" and run["cache_mb"] == 32.0
        )
        broken = {
            e["primitive"] for e in rung5["primitives"] if e["fit_broken"]
        }
        assert broken == {"pt_mat_vec_mult", "bootstrap"}

    def test_big_cache_rung_is_fully_exact(self, report):
        rung = next(
            run for run in report["runs"] if run["cache_mb"] == 192.0
        )
        for entry in rung["primitives"]:
            assert entry["max_abs_rel_error"] == 0.0, entry["primitive"]
            assert entry["pin_failures"] == 0, entry["primitive"]

    def test_report_validates_against_schema(self, report):
        validate_memsim_report(report)  # must not raise

    def test_report_validates_with_jsonschema(self, report):
        jsonschema = pytest.importorskip("jsonschema")
        import json

        from repro.memsim.validate import MEMSIM_REPORT_SCHEMA

        jsonschema.validate(json.loads(json.dumps(report)), MEMSIM_REPORT_SCHEMA)

    def test_render_mentions_rungs_and_verdict(self, report):
        text = render_report(report)
        assert "Limb Re-order" in text
        assert "fit break (expected)" in text
        assert "overall: PASS" in text

    def test_primitive_subset_runs(self):
        report = run_validation(
            runs=[("Baseline", MADConfig.none(), 2.0)], primitives=["mult"]
        )
        assert report["passed"]
        assert [e["primitive"] for e in report["runs"][0]["primitives"]] == [
            "mult"
        ]


class TestReportValidator:
    def test_rejects_wrong_schema_id(self):
        with pytest.raises(ValueError, match="schema id"):
            validate_memsim_report({"schema": "nope"})

    def test_rejects_missing_keys(self):
        report = run_validation(
            runs=[("Baseline", MADConfig.none(), 2.0)], primitives=["decomp"]
        )
        del report["runs"][0]["primitives"][0]["pin_failures"]
        with pytest.raises(ValueError, match="pin_failures"):
            validate_memsim_report(report)

    def test_rejects_negative_stream_bytes(self):
        report = run_validation(
            runs=[("Baseline", MADConfig.none(), 2.0)], primitives=["decomp"]
        )
        entry = report["runs"][0]["primitives"][0]
        entry["streams"]["ct_read"]["simulated"] = -1
        with pytest.raises(ValueError, match="ct_read"):
            validate_memsim_report(report)

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            validate_memsim_report([])
