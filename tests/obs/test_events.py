"""EventLog round-trips, stream validation and provenance stamping."""

import json

import pytest

from repro.obs.events import (
    CHUNK_COMPLETE,
    EVENTS_SCHEMA_ID,
    RUN_END,
    RUN_START,
    SWEEP_END,
    SWEEP_START,
    EventLog,
    provenance,
    read_events,
    validate_events,
    validate_provenance,
)


def _fail(message):
    raise ValueError(message)


class TestProvenance:
    def test_block_shape(self):
        block = provenance(argv=["sweep", "table5"], config_fingerprint="ab" * 32)
        validate_provenance(block, _fail)
        assert block["argv"] == ["sweep", "table5"]
        assert block["config_fingerprint"] == "ab" * 32
        assert isinstance(block["git_sha"], str) and block["git_sha"]
        assert isinstance(block["python"], str)
        assert isinstance(block["platform"], str)

    def test_defaults_to_process_argv(self):
        block = provenance()
        assert isinstance(block["argv"], list)

    def test_validator_rejects_missing_keys(self):
        block = provenance()
        del block["git_sha"]
        with pytest.raises(ValueError):
            validate_provenance(block, _fail)

    def test_validator_rejects_non_dict(self):
        with pytest.raises(ValueError):
            validate_provenance(None, _fail)


class TestEventLog:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path) as log:
            log.start("sweep table5", provenance_block=provenance())
            log.emit(SWEEP_START, {"points": 4})
            log.emit(CHUNK_COMPLETE, {"chunk": 0, "points_done": 2})
            log.emit(SWEEP_END, {"points": 4})
            log.emit(RUN_END, {"exit_code": 0})
        events = read_events(path)
        assert [e["type"] for e in events] == [
            RUN_START,
            SWEEP_START,
            CHUNK_COMPLETE,
            SWEEP_END,
            RUN_END,
        ]
        assert [e["seq"] for e in events] == list(range(5))
        assert all(e["schema"] == EVENTS_SCHEMA_ID for e in events)
        assert events[0]["data"]["command"] == "sweep table5"

    def test_emit_after_close_raises(self, tmp_path):
        log = EventLog(str(tmp_path / "e.jsonl"))
        log.start("x")
        log.close()
        with pytest.raises(ValueError):
            log.emit(SWEEP_START, {})

    def test_lines_are_flushed_as_written(self, tmp_path):
        path = str(tmp_path / "e.jsonl")
        log = EventLog(path)
        log.start("x")
        log.emit(SWEEP_START, {"points": 1})
        # Without closing: both lines must already be on disk (live tail).
        with open(path) as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 2
        log.close()

    def test_monotonic_timestamps_and_seq(self, tmp_path):
        path = str(tmp_path / "e.jsonl")
        with EventLog(path) as log:
            log.start("x")
            for index in range(5):
                log.emit(CHUNK_COMPLETE, {"chunk": index})
        events = read_events(path)
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)


class TestReadEvents:
    def _write(self, tmp_path, lines):
        path = str(tmp_path / "e.jsonl")
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        return path

    def _valid_lines(self, tmp_path):
        path = str(tmp_path / "valid.jsonl")
        with EventLog(path) as log:
            log.start("x")
            log.emit(SWEEP_START, {"points": 1})
        with open(path) as handle:
            return handle.read().splitlines()

    def test_strict_rejects_torn_tail(self, tmp_path):
        lines = self._valid_lines(tmp_path)
        path = self._write(tmp_path, lines + ['{"schema": "repro.obs.ev'])
        with pytest.raises(ValueError):
            read_events(path)

    def test_non_strict_drops_torn_tail(self, tmp_path):
        lines = self._valid_lines(tmp_path)
        path = self._write(tmp_path, lines + ['{"schema": "repro.obs.ev'])
        events = read_events(path, strict=False)
        assert [e["type"] for e in events] == [RUN_START, SWEEP_START]

    def test_first_event_must_be_run_start(self, tmp_path):
        lines = self._valid_lines(tmp_path)
        path = self._write(tmp_path, lines[1:])
        with pytest.raises(ValueError):
            read_events(path)

    def test_seq_gap_rejected(self, tmp_path):
        lines = self._valid_lines(tmp_path)
        doctored = json.loads(lines[1])
        doctored["seq"] = 7
        path = self._write(tmp_path, [lines[0], json.dumps(doctored)])
        with pytest.raises(ValueError):
            read_events(path)

    def test_wrong_schema_rejected(self, tmp_path):
        lines = self._valid_lines(tmp_path)
        doctored = json.loads(lines[0])
        doctored["schema"] = "repro.obs.events/v999"
        path = self._write(tmp_path, [json.dumps(doctored)] + lines[1:])
        with pytest.raises(ValueError):
            read_events(path)

    def test_validate_events_accepts_roundtrip(self, tmp_path):
        lines = self._valid_lines(tmp_path)
        validate_events([json.loads(line) for line in lines])
