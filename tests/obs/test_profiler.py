"""Resource profiler smoke tests: monotonicity, metering, depth limits."""

import os
import time

from repro.obs import state as obs
from repro.obs.profiler import (
    ProfilingTracer,
    ResourceMeter,
    alloc_tracing,
    alloc_tracing_active,
    ensure_alloc_tracing,
    gc_collections,
    process_cpu_seconds,
    profile_capture,
    profiled_span,
    render_resource_profile,
    rss_peak_bytes,
    run_resource_summary,
)


class TestPointSamplers:
    def test_rss_peak_is_positive_on_posix(self):
        peak = rss_peak_bytes()
        assert peak >= 0
        # On Linux/macOS a running interpreter is at least a few MB.
        assert peak > 1024 * 1024

    def test_rss_peak_is_monotone(self):
        before = rss_peak_bytes()
        ballast = [0] * 500_000
        after = rss_peak_bytes()
        assert after >= before
        del ballast

    def test_cpu_bounded_by_wall_times_cores(self):
        cores = os.cpu_count() or 1
        wall0 = time.perf_counter()
        cpu0 = process_cpu_seconds()
        total = sum(i * i for i in range(200_000))
        cpu = process_cpu_seconds() - cpu0
        wall = time.perf_counter() - wall0
        assert total > 0
        assert 0.0 <= cpu <= wall * cores + 0.05

    def test_gc_collections_non_negative_and_monotone(self):
        before = gc_collections()
        assert before >= 0
        assert gc_collections() >= before


class TestAllocTracing:
    def test_scoped_tracing_stops_on_exit(self):
        assert not alloc_tracing_active()
        with alloc_tracing():
            assert alloc_tracing_active()
        assert not alloc_tracing_active()

    def test_nested_scope_does_not_stop_outer(self):
        with alloc_tracing():
            with alloc_tracing():
                assert alloc_tracing_active()
            assert alloc_tracing_active()

    def test_ensure_leaves_tracing_running(self):
        # Worker-style arming: once started it stays on; scope it so the
        # rest of the suite is unaffected.
        with alloc_tracing():
            ensure_alloc_tracing()
            assert alloc_tracing_active()


class TestResourceMeter:
    def test_sample_shape_and_bounds(self):
        with alloc_tracing():
            with ResourceMeter() as meter:
                ballast = bytearray(2_000_000)
                del ballast
        sample = meter.sample
        assert sample is not None
        assert sample.rss_peak_bytes >= 0
        assert sample.alloc_peak_bytes >= 2_000_000
        assert sample.cpu_seconds >= 0.0
        assert sample.gc_collections >= 0
        as_dict = sample.as_dict()
        assert set(as_dict) == {
            "rss_peak_bytes",
            "alloc_peak_bytes",
            "alloc_current_bytes",
            "cpu_seconds",
            "gc_collections",
        }

    def test_peak_resets_between_blocks(self):
        with alloc_tracing():
            with ResourceMeter() as first:
                ballast = bytearray(4_000_000)
                del ballast
            with ResourceMeter() as second:
                pass
        assert first.sample.alloc_peak_bytes >= 4_000_000
        # The second block never held the ballast; reset_peak isolates it.
        assert second.sample.alloc_peak_bytes < 4_000_000

    def test_without_tracemalloc_allocs_are_zero(self):
        assert not alloc_tracing_active()
        with ResourceMeter() as meter:
            pass
        assert meter.sample.alloc_peak_bytes == 0
        assert meter.sample.alloc_current_bytes == 0


class TestProfiledSpan:
    def test_annotates_span_with_resource_block(self):
        with obs.capture() as (tracer, _registry):
            with alloc_tracing():
                with profiled_span("sweep:point", index=3):
                    pass
        (span,) = tracer.roots
        assert span.meta["index"] == 3
        resource = span.meta["resource"]
        assert resource["rss_peak_bytes"] >= 0
        assert resource["cpu_seconds"] >= 0.0

    def test_noop_when_tracing_disabled(self):
        with profiled_span("sweep:point", index=0) as span:
            pass
        assert span.meta == {}  # the shared null span stays unannotated


class TestProfilingTracer:
    def test_meters_only_to_max_depth(self):
        tracer = ProfilingTracer(max_depth=2)
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        spans = {span.name: span for span in tracer.spans()}
        assert "resource" in spans["a"].meta
        assert "resource" in spans["b"].meta
        assert "resource" not in spans["c"].meta

    def test_profile_capture_installs_and_restores(self):
        assert not obs.tracing_enabled()
        with profile_capture(max_depth=1) as (tracer, registry):
            assert obs.tracing_enabled()
            assert alloc_tracing_active()
            with obs.span("workload"):
                pass
        assert not obs.tracing_enabled()
        assert not alloc_tracing_active()
        (span,) = tracer.roots
        assert "resource" in span.meta

    def test_profile_capture_without_allocs(self):
        with profile_capture(max_depth=1, trace_allocs=False) as (tracer, _):
            assert not alloc_tracing_active()
            with obs.span("workload"):
                pass
        (span,) = tracer.roots
        assert span.meta["resource"]["alloc_peak_bytes"] == 0


class TestSummariesAndRendering:
    def test_run_resource_summary_shape(self):
        summary = run_resource_summary(wall_seconds=1.5, cpu_seconds=1.0)
        assert summary["wall_seconds"] == 1.5
        assert summary["cpu_seconds"] == 1.0
        assert summary["peak_rss_bytes"] >= 0
        assert summary["gc_collections"] >= 0

    def test_render_resource_profile(self):
        with profile_capture(max_depth=2) as (tracer, _):
            with obs.span("Bootstrap"):
                with obs.span("Mult"):
                    pass
        text = render_resource_profile(tracer)
        assert "Bootstrap" in text
        assert "Mult" in text
        assert "process peak RSS" in text

    def test_render_empty_tracer(self):
        from repro.obs.tracer import Tracer

        text = render_resource_profile(Tracer())
        assert "no metered spans" in text
