"""Metrics instruments, the registry, and instrumented call sites."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, state
from repro.params import BASELINE_JUNG
from repro.perf import CacheModel, MADConfig, PrimitiveCosts


class TestInstruments:
    def test_counter(self):
        counter = Counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("hits").inc(-1)

    def test_gauge(self):
        gauge = Gauge("size")
        gauge.set(3.5)
        gauge.set(2.0)
        assert gauge.value == 2.0

    def test_histogram(self):
        hist = Histogram("latency")
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.min == 1.0
        assert hist.max == 3.0
        assert hist.mean == pytest.approx(2.0)

    def test_empty_histogram_snapshot(self):
        assert Histogram("empty").snapshot() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
        }


class TestMetricsRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1

    def test_snapshot_shape_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(4.0)
        snap = registry.snapshot()
        assert list(snap) == ["counters", "gauges", "histograms"]
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"] == {"a": 2, "b": 1}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert len(registry) == 0


class TestInstrumentedCallSites:
    """The model code feeds the registry when metrics are enabled."""

    def test_cache_fit_decisions_are_counted(self):
        cache = CacheModel.from_mb(64)
        with state.capture() as (_, registry):
            cache.fits_o1(BASELINE_JUNG)
            cache.fits_beta(BASELINE_JUNG)
        counters = registry.counters()
        assert counters["perf.cache.o1.queries"] == 1
        assert counters["perf.cache.beta.queries"] == 1
        # Every query lands in exactly one of fit/nofit.
        fit = counters.get("perf.cache.o1.fit", 0)
        nofit = counters.get("perf.cache.o1.nofit", 0)
        assert fit + nofit == 1

    def test_primitive_invocations_are_counted(self):
        costs = PrimitiveCosts(BASELINE_JUNG, MADConfig.none())
        with state.capture() as (_, registry):
            costs.key_switch(10)
            costs.mult(10)
        counters = registry.counters()
        assert counters["perf.primitives.mult"] == 1
        # mult() itself performs a key switch.
        assert counters["perf.primitives.key_switch"] >= 1

    def test_ntt_invocations_are_counted(self):
        from repro.numth.ntt import NttContext

        ntt = NttContext(n=8, q=17)
        with state.capture() as (_, registry):
            ntt.inverse(ntt.forward([1, 2, 3, 4, 5, 6, 7, 8]))
        counters = registry.counters()
        assert counters["numth.ntt.forward"] == 1
        assert counters["numth.ntt.inverse"] == 1

    def test_nothing_recorded_when_disabled(self):
        registry = MetricsRegistry()
        previous = state.set_metrics(registry, enabled=False)
        try:
            CacheModel.from_mb(64).fits_o1(BASELINE_JUNG)
            PrimitiveCosts(BASELINE_JUNG, MADConfig.none()).mult(10)
        finally:
            state.set_metrics(previous[0], enabled=previous[1])
        assert len(registry) == 0
