"""Tracing must be a pure observer: traced totals == untraced, bit for bit.

The cost model is integer arithmetic throughout, so these assertions are
exact equality — any divergence means a span recorded a cost twice, missed
one, or fed something back into the model.
"""

from hypothesis import given, settings, strategies as st

from repro.apps import helr_training, resnet20_inference, workload_cost
from repro.obs import state
from repro.params import BASELINE_JUNG, MAD_OPTIMAL
from repro.perf import BootstrapModel, CacheModel, MADConfig

BOOTSTRAP_PHASES = ("ModRaise", "CoeffToSlot", "EvalMod", "SlotToCoeff")


@st.composite
def mad_configs(draw):
    """Any valid MADConfig (limb_reorder requires cache_alpha)."""
    cache_alpha = draw(st.booleans())
    return MADConfig(
        cache_o1=draw(st.booleans()),
        cache_beta=draw(st.booleans()),
        cache_alpha=cache_alpha,
        limb_reorder=cache_alpha and draw(st.booleans()),
        mod_down_merge=draw(st.booleans()),
        mod_down_hoist=draw(st.booleans()),
        key_compression=draw(st.booleans()),
    )


PARAM_SETS = st.sampled_from([BASELINE_JUNG, MAD_OPTIMAL])
CACHES = st.sampled_from([None, 32.0, 256.0])


@settings(max_examples=25, deadline=None)
@given(config=mad_configs(), params=PARAM_SETS, cache_mb=CACHES)
def test_traced_bootstrap_totals_are_bit_identical(config, params, cache_mb):
    cache = CacheModel.from_mb(cache_mb) if cache_mb else None
    untraced = BootstrapModel(params, config, cache).total_cost()
    with state.capture() as (tracer, _):
        traced = BootstrapModel(params, config, cache).total_cost()
    assert traced == untraced
    # Spans record each cost exactly once, so the span sum is the total.
    assert tracer.total_cost() == untraced
    with state.capture() as (tracer, _):
        ledger = BootstrapModel(params, config, cache).ledger()
    assert ledger.total == untraced
    assert tracer.total_cost() == untraced


@settings(max_examples=10, deadline=None)
@given(config=mad_configs(), params=PARAM_SETS)
def test_traced_span_tree_covers_all_phases(config, params):
    with state.capture() as (tracer, _):
        BootstrapModel(params, config).ledger()
    names = {span.name for span in tracer.spans()}
    for phase in BOOTSTRAP_PHASES:
        assert phase in names
    (root,) = tracer.roots
    assert root.name == "Bootstrap"
    assert root.end is not None


@settings(max_examples=10, deadline=None)
@given(
    config=mad_configs(),
    params=PARAM_SETS,
    factory=st.sampled_from([helr_training, resnet20_inference]),
)
def test_traced_workload_totals_are_bit_identical(config, params, factory):
    workload = factory(params)
    untraced = workload_cost(workload, params, config)
    with state.capture() as (tracer, _):
        traced = workload_cost(workload, params, config)
    assert traced.compute == untraced.compute
    assert traced.bootstrap == untraced.bootstrap
    assert tracer.total_cost() == untraced.total


def test_repeated_runs_accumulate_independent_roots():
    with state.capture() as (tracer, _):
        BootstrapModel(BASELINE_JUNG, MADConfig.none()).ledger()
        BootstrapModel(BASELINE_JUNG, MADConfig.none()).ledger()
    assert len(tracer.roots) == 2
    single = BootstrapModel(BASELINE_JUNG, MADConfig.none()).total_cost()
    assert tracer.total_cost() == single.scaled(2)
