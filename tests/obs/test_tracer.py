"""Tracer span trees, the null fast path, and the global-state facade."""

import pytest

from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    state,
)
from repro.obs.tracer import _NULL_CONTEXT
from repro.perf.events import CostReport, MemTraffic, OpCount


def fake_clock(start=0.0, step=1.0):
    """Deterministic clock: returns start, start+step, start+2*step, ..."""
    tick = {"now": start - step}

    def clock():
        tick["now"] += step
        return tick["now"]

    return clock


def cost(mults=1, ct_read=10):
    return CostReport(OpCount(mults=mults), MemTraffic(ct_read=ct_read))


class TestTracer:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("b"):
                pass
        assert [s.name for s in tracer.spans()] == ["root", "a", "leaf", "b"]
        root = tracer.roots[0]
        assert [c.name for c in root.children] == ["a", "b"]
        assert root.children[0].children[0].parent is root.children[0]

    def test_depths(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
        depths = {s.name: s.depth for s in tracer.spans()}
        assert depths == {"root": 0, "child": 1, "grandchild": 2}

    def test_current_tracks_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer"):
            assert tracer.current.name == "outer"
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
            assert tracer.current.name == "outer"
        assert tracer.current is None

    def test_durations_use_injected_clock(self):
        tracer = Tracer(clock=fake_clock(step=1.0))
        with tracer.span("outer"):  # opens at t=0
            with tracer.span("inner"):  # opens at t=1, closes at t=2
                pass
        # outer closes at t=3
        inner = tracer.roots[0].children[0]
        assert inner.duration == pytest.approx(1.0)
        assert tracer.roots[0].duration == pytest.approx(3.0)

    def test_record_cost_accumulates_on_current_span(self):
        tracer = Tracer()
        with tracer.span("s"):
            tracer.record_cost(cost(mults=1))
            tracer.record_cost(cost(mults=2))
        assert tracer.roots[0].cost == cost(mults=3, ct_read=20)

    def test_record_cost_outside_spans_is_a_noop(self):
        tracer = Tracer()
        tracer.record_cost(cost())
        assert tracer.total_cost() is None

    def test_total_cost_sums_exclusive_costs(self):
        tracer = Tracer()
        with tracer.span("root"):
            tracer.record_cost(cost(mults=1))
            with tracer.span("child"):
                tracer.record_cost(cost(mults=10))
        assert tracer.total_cost() == cost(mults=11, ct_read=20)

    def test_span_total_cost_is_inclusive(self):
        tracer = Tracer()
        with tracer.span("root"):
            tracer.record_cost(cost(mults=1))
            with tracer.span("child"):
                tracer.record_cost(cost(mults=10))
        root = tracer.roots[0]
        assert root.cost == cost(mults=1)
        assert root.total_cost() == cost(mults=11, ct_read=20)

    def test_meta_and_annotate(self):
        tracer = Tracer()
        with tracer.span("s", level=3, name="meta-key-named-name") as span:
            tracer.annotate(bound="memory")
        assert span.meta == {
            "level": 3,
            "name": "meta-key-named-name",
            "bound": "memory",
        }

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("s"):
                raise RuntimeError("boom")
        assert tracer.current is None
        assert tracer.roots[0].end is not None

    def test_multiple_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]


class TestNullTracer:
    def test_span_returns_shared_context(self):
        ctx1 = NULL_TRACER.span("a", level=1)
        ctx2 = NULL_TRACER.span("b")
        assert ctx1 is ctx2 is _NULL_CONTEXT

    def test_is_reentrant_and_records_nothing(self):
        with NULL_TRACER.span("outer") as outer:
            with NULL_TRACER.span("inner") as inner:
                outer.record_cost(cost())
                inner.annotate(x=1)
        NULL_TRACER.record_cost(cost())
        NULL_TRACER.annotate(y=2)
        assert list(NULL_TRACER.spans()) == []
        assert NULL_TRACER.total_cost() is None
        assert NULL_TRACER.current is None
        assert not NULL_TRACER.enabled


class TestGlobalState:
    def test_disabled_by_default(self):
        assert state.get_tracer() is NULL_TRACER
        assert not state.tracing_enabled()
        assert not state.metrics_enabled()

    def test_set_tracer_roundtrip(self):
        tracer = Tracer()
        previous = state.set_tracer(tracer)
        try:
            assert state.get_tracer() is tracer
            assert state.tracing_enabled()
            with state.span("s"):
                state.record_cost(cost())
            assert tracer.total_cost() == cost()
        finally:
            state.set_tracer(
                previous if previous is not NULL_TRACER else None
            )
        assert state.get_tracer() is NULL_TRACER

    def test_capture_installs_and_restores(self):
        assert not state.tracing_enabled()
        with state.capture() as (tracer, registry):
            assert state.get_tracer() is tracer
            assert state.metrics() is registry
            assert state.tracing_enabled() and state.metrics_enabled()
            state.count("hits")
            with state.span("s"):
                state.record_cost(cost())
        assert not state.tracing_enabled()
        assert not state.metrics_enabled()
        assert registry.counter("hits").value == 1
        assert tracer.total_cost() == cost()

    def test_capture_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with state.capture():
                raise RuntimeError("boom")
        assert not state.tracing_enabled()
        assert not state.metrics_enabled()

    def test_capture_accepts_existing_objects(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        with state.capture(tracer=tracer, registry=registry) as (t, r):
            assert t is tracer and r is registry

    def test_count_is_noop_when_disabled(self):
        before = state.metrics().snapshot()
        state.count("never.recorded")
        state.gauge("never.recorded", 1.0)
        state.observe("never.recorded", 1.0)
        assert state.metrics().snapshot() == before
