"""Baseline store, tolerance gating, and the bench regression harness."""

import json

import pytest

from repro.obs import state
from repro.obs.baseline import (
    BaselineStore,
    Tolerance,
    baseline_key,
    compare_reports,
    normalize_report,
)
from repro.obs.bench import (
    DEFAULT_SPECS,
    BenchSpec,
    primitive_micro_cost,
    run_bench,
    run_spec,
)
from repro.obs.export import build_run_report, validate_run_report
from repro.params import BASELINE_JUNG
from repro.perf import BootstrapModel, MADConfig


def bootstrap_report(config=None):
    config = config if config is not None else MADConfig.none()
    with state.capture() as (tracer, registry):
        BootstrapModel(BASELINE_JUNG, config).ledger()
    return build_run_report(
        tracer, registry, command="test", workload="bootstrap", params="baseline"
    )


class TestBaselineKey:
    def test_contains_all_dimensions(self):
        key = baseline_key("bootstrap", "optimal", "all", 256.0, "BTS")
        assert key == "bootstrap__optimal__all__cache256__bts"

    def test_no_cache_no_design(self):
        assert baseline_key("micro", "baseline", "none") == (
            "micro__baseline__none__nocache"
        )

    def test_filename_safe(self):
        key = baseline_key("ResNet-20 (CIFAR/10)", "p", "c")
        assert "/" not in key and " " not in key and "(" not in key


class TestNormalization:
    def test_zeroes_wall_clock_only(self):
        report = bootstrap_report()
        normalized = normalize_report(report)
        assert normalized["wall_seconds"] == 0.0
        assert all(
            s["start_us"] == 0.0 and s["duration_us"] == 0.0
            for s in normalized["spans"]
        )
        # Analytical content untouched.
        assert normalized["totals"] == report["totals"]
        assert normalized["metrics"] == report["metrics"]
        # Input not mutated.
        assert report["wall_seconds"] > 0.0

    def test_normalized_report_still_validates(self):
        validate_run_report(normalize_report(bootstrap_report()))


class TestBaselineStore:
    def test_roundtrip(self, tmp_path):
        store = BaselineStore(str(tmp_path))
        report = bootstrap_report()
        path = store.save("k", report)
        assert path.is_file()
        loaded = store.load("k")
        assert loaded == normalize_report(report)
        assert store.exists("k") and not store.exists("missing")
        assert store.keys() == ["k"]

    def test_load_missing_returns_none(self, tmp_path):
        assert BaselineStore(str(tmp_path)).load("nope") is None

    def test_saved_files_are_deterministic(self, tmp_path):
        store = BaselineStore(str(tmp_path))
        a = store.save("a", bootstrap_report()).read_text()
        b = store.save("b", bootstrap_report()).read_text()
        assert a == b  # timing noise normalized away


class TestTolerance:
    def test_defaults_are_exact(self):
        tolerance = Tolerance()
        assert tolerance.allows(100, 100)
        assert not tolerance.allows(100, 101)

    def test_relative_slack(self):
        tolerance = Tolerance(relative=0.05)
        assert tolerance.allows(100, 105)
        assert not tolerance.allows(100, 106)

    def test_absolute_slack(self):
        tolerance = Tolerance(absolute=10)
        assert tolerance.allows(0, 10)
        assert not tolerance.allows(0, 11)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Tolerance(relative=-1)


class TestCompareReports:
    def test_identical_reports_pass(self):
        report = bootstrap_report()
        comparison = compare_reports(normalize_report(report), report)
        assert comparison.ok
        assert comparison.diff is None
        assert "ok" in comparison.describe()

    def test_improvement_is_not_regression(self):
        baseline = bootstrap_report(MADConfig.none())
        improved = bootstrap_report(MADConfig.all())
        comparison = compare_reports(baseline, improved)
        assert comparison.ok
        assert "traffic.total" in comparison.improvements
        assert comparison.diff is not None  # attribution still available

    def test_cost_growth_is_regression_with_attribution(self):
        baseline = bootstrap_report(MADConfig.all())
        current = bootstrap_report(MADConfig.none())  # strictly worse
        comparison = compare_reports(baseline, current)
        assert not comparison.ok
        metrics = {r.metric for r in comparison.regressions}
        assert "traffic.total" in metrics
        text = comparison.describe()
        assert "REGRESSION" in text
        assert "Span path" in text  # attribution table names the spans

    def test_tolerance_absorbs_growth(self):
        baseline = bootstrap_report(MADConfig.all())
        current = bootstrap_report(MADConfig.none())
        comparison = compare_reports(baseline, current, Tolerance(relative=10.0))
        assert comparison.ok


class TestBenchSpecs:
    def test_default_matrix_covers_paper_workloads(self):
        names = [spec.name for spec in DEFAULT_SPECS]
        assert any("bootstrap" in n for n in names)
        assert any("helr" in n for n in names)
        assert any("resnet" in n for n in names)
        assert any("micro" in n for n in names)
        assert len(set(names)) == len(names)

    def test_micro_workload_is_traced_and_parity_clean(self):
        untraced = primitive_micro_cost(BASELINE_JUNG, MADConfig.none())
        with state.capture() as (tracer, _):
            traced = primitive_micro_cost(BASELINE_JUNG, MADConfig.none())
        assert traced == untraced
        assert tracer.total_cost() == untraced
        names = {span.name for span in tracer.spans()}
        assert {"Mult", "Rotate", "KeySwitch", "ModRaise"} <= names

    def test_run_spec_produces_valid_report(self):
        report = run_spec(BenchSpec("micro", "baseline", "none"))
        validate_run_report(report)
        assert report["totals"]["ops"]["total"] > 0
        assert report["command"] == "bench micro__baseline__none__nocache"

    def test_run_spec_design_attribution(self):
        report = run_spec(
            BenchSpec("bootstrap", "optimal", "all", cache_mb=256.0, design="BTS")
        )
        assert report["runtime"]["design"] == "BTS"
        assert report["runtime"]["roofline_seconds"] > 0


class TestRunBench:
    SPECS = (
        BenchSpec("micro", "baseline", "none"),
        BenchSpec("bootstrap", "baseline", "none"),
    )

    def test_update_then_check_passes(self, tmp_path, capsys):
        store = BaselineStore(str(tmp_path / "baselines"))
        assert run_bench(self.SPECS, store, update=True) == 0
        assert len(store.keys()) == len(self.SPECS)
        assert run_bench(self.SPECS, store) == 0
        assert "bench ok" in capsys.readouterr().out

    def test_missing_baseline_fails(self, tmp_path, capsys):
        store = BaselineStore(str(tmp_path / "empty"))
        assert run_bench(self.SPECS, store) == 1
        out = capsys.readouterr().out
        assert "MISSING baseline" in out and "--update" in out

    def test_perturbed_baseline_fails_and_names_span(self, tmp_path, capsys):
        """The acceptance check: a deliberately lowered baseline cost makes
        bench exit non-zero with the regressing span in the table."""
        store = BaselineStore(str(tmp_path / "baselines"))
        run_bench(self.SPECS, store, update=True)
        key = self.SPECS[1].name
        path = store.path_for(key)
        doc = json.loads(path.read_text())
        # Pretend EvalMod used to be 1 GB cheaper on ops and traffic.
        doc["totals"]["traffic"]["ct_read"] -= 10**9
        doc["totals"]["traffic"]["total"] -= 10**9
        target = next(
            s for s in doc["spans"]
            if s["name"] == "EvalMod:Mult" and s.get("traffic")
        )
        target["traffic"]["ct_read"] -= 10**9
        target["traffic"]["total"] -= 10**9
        path.write_text(json.dumps(doc))

        out_dir = tmp_path / "out"
        assert run_bench(self.SPECS, store, out_dir=str(out_dir)) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "traffic.ct_read" in out
        assert "EvalMod:Mult" in out  # the regressing span is named
        # cost_diff artifact written for the regressed workload.
        diff_doc = json.loads((out_dir / f"cost_diff_{key}.json").read_text())
        assert diff_doc["identical"] is False

    def test_trajectories_append(self, tmp_path):
        store = BaselineStore(str(tmp_path / "baselines"))
        out_dir = tmp_path / "out"
        specs = (self.SPECS[0],)
        run_bench(specs, store, update=True, out_dir=str(out_dir))
        run_bench(specs, store, out_dir=str(out_dir))
        path = out_dir / f"BENCH_{specs[0].name}.json"
        trajectory = json.loads(path.read_text())
        assert trajectory["schema"] == "repro.obs.bench_trajectory/v1.1"
        assert len(trajectory["entries"]) == 2
        first, second = trajectory["entries"]
        assert first["ok"] is None  # update run: nothing gated
        assert second["ok"] is True
        assert second["ops_total"] == first["ops_total"]
        assert second["wall_seconds"] > 0

    def test_tolerance_flag_absorbs_regression(self, tmp_path):
        store = BaselineStore(str(tmp_path / "baselines"))
        run_bench(self.SPECS, store, update=True)
        key = self.SPECS[0].name
        path = store.path_for(key)
        doc = json.loads(path.read_text())
        doc["totals"]["ops"]["mults"] -= 5
        doc["totals"]["ops"]["total"] -= 5
        path.write_text(json.dumps(doc))
        assert run_bench(self.SPECS, store) == 1
        assert run_bench(self.SPECS, store, tolerance=Tolerance(absolute=10)) == 0
