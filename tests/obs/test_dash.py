"""Dashboard model reduction and self-contained HTML rendering."""

import re

import pytest

from repro.obs.dash import build_dashboard, render_dashboard, write_dashboard
from repro.obs.events import (
    CHUNK_COMPLETE,
    RUN_END,
    SWEEP_END,
    SWEEP_START,
    EventLog,
    provenance,
    read_events,
)


@pytest.fixture
def events(tmp_path):
    path = str(tmp_path / "events.jsonl")
    with EventLog(path) as log:
        log.start(
            "sweep table5",
            provenance_block=provenance(config_fingerprint="ab" * 32),
        )
        log.emit(SWEEP_START, {"sweep": "table5", "points": 6, "reused": 0, "jobs": 2})
        log.emit(
            CHUNK_COMPLETE,
            {
                "chunk": 0,
                "first_index": 0,
                "last_index": 2,
                "points_done": 3,
                "points_total": 6,
                "memo_hits": 1,
                "memo_misses": 2,
                "busy_seconds": 0.5,
                "worker": {"pid": 101, "peak_rss_bytes": 50 << 20},
            },
        )
        log.emit(
            CHUNK_COMPLETE,
            {
                "chunk": 1,
                "first_index": 3,
                "last_index": 5,
                "points_done": 6,
                "points_total": 6,
                "memo_hits": 3,
                "memo_misses": 0,
                "busy_seconds": 0.4,
                "worker": {"pid": 102, "peak_rss_bytes": 60 << 20},
            },
        )
        log.emit(
            SWEEP_END,
            {
                "sweep": "table5",
                "points": 6,
                "wall_seconds": 1.0,
                "workers": [
                    {"pid": 101, "peak_rss_bytes": 52 << 20},
                    {"pid": 102, "peak_rss_bytes": 60 << 20},
                ],
            },
        )
        log.emit(RUN_END, {"exit_code": 0})
    return read_events(path)


class TestBuildDashboard:
    def test_model_reduction(self, events):
        model = build_dashboard(events)
        assert model["sweep"] == "table5"
        assert model["points_total"] == 6
        assert model["points_done"] == 6
        assert model["finished"] is True
        assert model["memo_hits"] == 4
        assert model["memo_misses"] == 2
        assert model["memo_hit_rate"] == pytest.approx(4 / 6)
        assert sorted(model["workers"]) == [101, 102]
        # sweep_end refines pid 101's peak upward.
        assert model["workers"][101]["peak_rss_bytes"] == 52 << 20
        assert model["peak_rss_bytes"] == 60 << 20
        assert len(model["chunks"]) == 2
        assert model["wall_seconds"] == 1.0

    def test_in_flight_stream(self, events):
        # Drop sweep_end/run_end: a live run mid-sweep.
        model = build_dashboard(events[:-2])
        assert model["finished"] is False
        assert model["points_done"] == 6
        assert model["wall_seconds"] >= 0.0

    def test_empty_stream(self):
        model = build_dashboard([])
        assert model["points_total"] == 0
        assert model["points_per_second"] == 0.0
        assert model["memo_hit_rate"] == 0.0


class TestRenderDashboard:
    def test_no_external_resources(self, events):
        html = render_dashboard(events)
        assert "http://" not in html
        assert "https://" not in html
        assert "@import" not in html
        assert "<script src" not in html

    def test_contains_stats_and_charts(self, events):
        html = render_dashboard(events)
        assert "repro sweep dashboard" in html
        assert "table5" in html
        assert "memo hit rate" in html
        assert "points / s" in html
        assert html.count("<svg") == 2  # progress line + worker bars
        assert "polyline" in html
        assert "pid 101" in html and "pid 102" in html
        assert "prefers-color-scheme: dark" in html
        # Provenance is visible: the commit is attributable from the page.
        sha = events[0]["data"]["provenance"]["git_sha"][:12]
        assert sha in html

    def test_chunk_table_rows(self, events):
        html = render_dashboard(events)
        assert html.count("<tr>") >= 3  # header + 2 chunks
        assert "0–2" in html and "3–5" in html

    def test_escapes_untrusted_strings(self, events):
        doctored = [dict(e) for e in events]
        doctored[0] = dict(doctored[0])
        doctored[0]["data"] = dict(doctored[0]["data"])
        doctored[0]["data"]["command"] = 'sweep <script>alert(1)</script>'
        html = render_dashboard(doctored)
        assert "<script>alert" not in html
        assert "&lt;script&gt;" in html

    def test_render_empty_stream(self):
        html = render_dashboard([])
        assert "no progress events" in html
        assert "no worker data" in html


class TestWriteDashboard:
    def test_writes_file_and_returns_model(self, events, tmp_path):
        events_path = str(tmp_path / "events.jsonl")
        with EventLog(events_path) as log:
            log.start("sweep table5", provenance_block=provenance())
            log.emit(SWEEP_START, {"sweep": "table5", "points": 2, "jobs": 1})
        out = str(tmp_path / "dash.html")
        model = write_dashboard(events_path, out)
        assert model["sweep"] == "table5"
        with open(out) as handle:
            content = handle.read()
        assert content.startswith("<!DOCTYPE html>")

    def test_tolerates_torn_tail(self, tmp_path):
        events_path = str(tmp_path / "events.jsonl")
        with EventLog(events_path) as log:
            log.start("sweep table5", provenance_block=provenance())
        with open(events_path, "a") as handle:
            handle.write('{"torn')
        out = str(tmp_path / "dash.html")
        write_dashboard(events_path, out)
        assert re.search(r"<!DOCTYPE html>", open(out).read())
