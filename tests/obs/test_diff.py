"""Differential cost attribution: alignment, deltas, schemas, rendering."""

import json

import pytest

from repro.obs import Tracer, state
from repro.obs.diff import (
    COST_DIFF_SCHEMA,
    SCHEMA_ID,
    WorkloadMismatchError,
    build_overlay_trace,
    diff_run_reports,
    render_attribution_table,
    validate_cost_diff,
    write_cost_diff,
)
from repro.obs.export import build_run_report
from repro.params import BASELINE_JUNG
from repro.perf import BootstrapModel, MADConfig
from repro.perf.events import CostReport, MemTraffic, OpCount


def traced_bootstrap_report(config, workload="bootstrap"):
    with state.capture() as (tracer, registry):
        BootstrapModel(BASELINE_JUNG, config).ledger()
    return build_run_report(
        tracer,
        registry,
        command="test",
        workload=workload,
        params="baseline",
    )


def report_from(tracer, workload="synthetic"):
    return build_run_report(tracer, command="test", workload=workload)


def cost(ops=0, ct_read=0, ct_write=0, key_read=0, pt_read=0):
    return CostReport(
        OpCount(mults=ops),
        MemTraffic(
            ct_read=ct_read,
            ct_write=ct_write,
            key_read=key_read,
            pt_read=pt_read,
        ),
    )


class TestIdenticalRuns:
    def test_diff_is_empty(self):
        base = traced_bootstrap_report(MADConfig.none())
        other = traced_bootstrap_report(MADConfig.none())
        diff = diff_run_reports(base, other)
        assert diff["identical"] is True
        assert diff["spans"] == []
        assert diff["metrics"]["counters"] == {}
        assert not any(diff["totals"]["delta"]["ops"].values())
        assert not any(diff["totals"]["delta"]["traffic"].values())

    def test_empty_diff_validates(self):
        base = traced_bootstrap_report(MADConfig.none())
        diff = diff_run_reports(base, base)
        validate_cost_diff(diff)
        json.dumps(diff)

    def test_wall_clock_never_breaks_identity(self):
        # Same model, different timings: still analytically identical.
        base = traced_bootstrap_report(MADConfig.none())
        other = traced_bootstrap_report(MADConfig.none())
        assert base["wall_seconds"] != other["wall_seconds"] or True
        assert diff_run_reports(base, other)["identical"]

    def test_render_says_identical(self):
        base = traced_bootstrap_report(MADConfig.none())
        text = render_attribution_table(diff_run_reports(base, base))
        assert "identical" in text


class TestMadToggleAttribution:
    def test_beta_digit_reuse_attributes_to_key_switch_spans(self):
        """Toggling O(beta)-digit reuse: >=90% of the traffic delta must
        land on the key-switch-bearing PtMatVecMult spans."""
        base = traced_bootstrap_report(MADConfig(cache_o1=True))
        other = traced_bootstrap_report(
            MADConfig(cache_o1=True, cache_beta=True)
        )
        diff = diff_run_reports(base, other)
        assert not diff["identical"]
        key_switch_share = sum(
            entry["traffic_share"]
            for entry in diff["spans"]
            if "CoeffToSlot" in entry["path"] or "SlotToCoeff" in entry["path"]
        )
        assert key_switch_share >= 0.9
        # The stream totals must agree with the model-level delta.
        delta = diff["totals"]["delta"]["traffic"]
        assert delta["total"] < 0  # the optimization reduces traffic
        assert delta["total"] == sum(delta[s] for s in
                                     ("ct_read", "ct_write", "key_read", "pt_read"))

    def test_key_compression_delta_is_pure_key_read(self):
        base = traced_bootstrap_report(
            MADConfig.caching_only().with_(
                mod_down_merge=True, mod_down_hoist=True
            )
        )
        other = traced_bootstrap_report(MADConfig.all())
        diff = diff_run_reports(base, other)
        delta = diff["totals"]["delta"]["traffic"]
        assert delta["key_read"] < 0
        assert delta["ct_read"] == 0
        assert delta["ct_write"] == 0
        assert delta["pt_read"] == 0
        assert delta["total"] == delta["key_read"]

    def test_span_deltas_sum_to_total_delta(self):
        base = traced_bootstrap_report(MADConfig.none())
        other = traced_bootstrap_report(MADConfig.all())
        diff = diff_run_reports(base, other)
        span_sum = sum(e["traffic"]["delta"]["total"] for e in diff["spans"])
        assert span_sum == diff["totals"]["delta"]["traffic"]["total"]
        ops_sum = sum(e["ops"]["delta"]["total"] for e in diff["spans"])
        assert ops_sum == diff["totals"]["delta"]["ops"]["total"]

    def test_metric_counter_deltas(self):
        base = traced_bootstrap_report(MADConfig.none())
        other = traced_bootstrap_report(MADConfig.all())
        diff = diff_run_reports(base, other)
        counters = diff["metrics"]["counters"]
        # mod_down_hoist changes how many ksk inner products run.
        assert counters  # some instrumented call-site count changed
        for row in counters.values():
            assert row["delta"] == row["other"] - row["base"]
            assert row["delta"] != 0


class TestWorkloadMismatch:
    def test_raises_clear_error(self):
        base = traced_bootstrap_report(MADConfig.none(), workload="bootstrap")
        other = traced_bootstrap_report(MADConfig.none(), workload="helr")
        with pytest.raises(WorkloadMismatchError) as excinfo:
            diff_run_reports(base, other)
        message = str(excinfo.value)
        assert "bootstrap" in message and "helr" in message
        assert "--force" in message

    def test_force_allows_mismatch(self):
        base = traced_bootstrap_report(MADConfig.none(), workload="bootstrap")
        other = traced_bootstrap_report(MADConfig.none(), workload="helr")
        diff = diff_run_reports(base, other, require_same_workload=False)
        assert diff["base"]["workload"] == "bootstrap"
        assert diff["other"]["workload"] == "helr"

    def test_non_report_rejected(self):
        base = traced_bootstrap_report(MADConfig.none())
        with pytest.raises(ValueError, match="schema"):
            diff_run_reports(base, {"spans": []})
        with pytest.raises(ValueError, match="not a run report"):
            diff_run_reports(base, {"schema": "x"})


class TestStructuralAlignment:
    def test_renamed_span_is_aligned_positionally(self):
        base_tracer, other_tracer = Tracer(), Tracer()
        with base_tracer.span("Root"):
            with base_tracer.span("Phase"):
                base_tracer.record_cost(cost(ops=10, ct_read=100))
        with other_tracer.span("Root"):
            with other_tracer.span("PhaseRenamed"):
                other_tracer.record_cost(cost(ops=10, ct_read=160))
        diff = diff_run_reports(
            report_from(base_tracer), report_from(other_tracer)
        )
        (entry,) = diff["spans"]
        assert entry["status"] == "renamed"
        assert entry["base_name"] == "Phase"
        assert entry["other_name"] == "PhaseRenamed"
        assert entry["path"] == "Root/Phase"  # base name is canonical
        assert entry["traffic"]["delta"]["ct_read"] == 60

    def test_rename_tolerance_can_be_disabled(self):
        base_tracer, other_tracer = Tracer(), Tracer()
        with base_tracer.span("Root"):
            with base_tracer.span("Phase"):
                base_tracer.record_cost(cost(ops=10, ct_read=100))
        with other_tracer.span("Root"):
            with other_tracer.span("PhaseRenamed"):
                other_tracer.record_cost(cost(ops=10, ct_read=160))
        diff = diff_run_reports(
            report_from(base_tracer),
            report_from(other_tracer),
            rename_tolerance=False,
        )
        statuses = sorted(e["status"] for e in diff["spans"])
        assert statuses == ["added", "removed"]

    def test_added_and_removed_spans_carry_full_cost(self):
        base_tracer, other_tracer = Tracer(), Tracer()
        with base_tracer.span("Root"):
            with base_tracer.span("Kept"):
                base_tracer.record_cost(cost(ops=1, ct_read=10))
            with base_tracer.span("Dropped"):
                base_tracer.record_cost(cost(ops=2, key_read=20))
        with other_tracer.span("Root"):
            with other_tracer.span("Kept"):
                other_tracer.record_cost(cost(ops=1, ct_read=10))
            with other_tracer.span("Dropped"):
                other_tracer.record_cost(cost(ops=2, key_read=20))
            with other_tracer.span("New"):
                other_tracer.record_cost(cost(ops=3, pt_read=30))
        diff = diff_run_reports(
            report_from(base_tracer), report_from(other_tracer)
        )
        (entry,) = diff["spans"]
        assert entry["status"] == "added"
        assert entry["path"] == "Root/New"
        assert entry["traffic"]["delta"]["pt_read"] == 30
        assert entry["ops"]["delta"]["total"] == 3

    def test_repeated_siblings_align_by_occurrence(self):
        def build(costs):
            tracer = Tracer()
            with tracer.span("Root"):
                for c in costs:
                    with tracer.span("Iter"):
                        tracer.record_cost(c)
            return report_from(tracer)

        base = build([cost(ct_read=10), cost(ct_read=20), cost(ct_read=30)])
        other = build([cost(ct_read=10), cost(ct_read=25), cost(ct_read=30)])
        diff = diff_run_reports(base, other)
        (entry,) = diff["spans"]
        assert entry["path"] == "Root/Iter#2"
        assert entry["traffic"]["delta"]["ct_read"] == 5

    def test_nested_rename_children_still_align(self):
        base_tracer, other_tracer = Tracer(), Tracer()
        with base_tracer.span("Root"):
            with base_tracer.span("Old"):
                with base_tracer.span("Leaf"):
                    base_tracer.record_cost(cost(ct_write=7))
        with other_tracer.span("Root"):
            with other_tracer.span("New"):
                with other_tracer.span("Leaf"):
                    other_tracer.record_cost(cost(ct_write=9))
        diff = diff_run_reports(
            report_from(base_tracer), report_from(other_tracer)
        )
        by_path = {e["path"]: e for e in diff["spans"]}
        assert by_path["Root/Old"]["status"] == "renamed"
        leaf = by_path["Root/Old/Leaf"]
        assert leaf["status"] == "matched"
        assert leaf["traffic"]["delta"]["ct_write"] == 2


class TestCostDiffDocument:
    def test_sorted_by_traffic_magnitude(self):
        base = traced_bootstrap_report(MADConfig.none())
        other = traced_bootstrap_report(MADConfig.all())
        diff = diff_run_reports(base, other)
        magnitudes = [
            abs(e["traffic"]["delta"]["total"]) for e in diff["spans"]
        ]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_traffic_shares_sum_to_one(self):
        base = traced_bootstrap_report(MADConfig.none())
        other = traced_bootstrap_report(MADConfig.all())
        diff = diff_run_reports(base, other)
        assert sum(e["traffic_share"] for e in diff["spans"]) == pytest.approx(1.0)

    def test_validates_against_json_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        base = traced_bootstrap_report(MADConfig.none())
        other = traced_bootstrap_report(MADConfig.caching_only())
        diff = diff_run_reports(base, other)
        jsonschema.validate(diff, COST_DIFF_SCHEMA)

    def test_write_cost_diff_roundtrip(self, tmp_path):
        base = traced_bootstrap_report(MADConfig.none())
        other = traced_bootstrap_report(MADConfig.caching_only())
        diff = diff_run_reports(base, other)
        path = tmp_path / "cost_diff.json"
        write_cost_diff(diff, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == SCHEMA_ID
        validate_cost_diff(loaded)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("spans"),
            lambda d: d.update(schema="wrong"),
            lambda d: d.update(identical="yes"),
            lambda d: d["totals"]["delta"].pop("traffic"),
            lambda d: d["spans"][0].update(status="mutated"),
            lambda d: d["spans"][0]["traffic"]["delta"].update(ct_read="1"),
            lambda d: d["metrics"].pop("counters"),
        ],
    )
    def test_validator_rejects_malformed(self, mutate):
        base = traced_bootstrap_report(MADConfig.none())
        other = traced_bootstrap_report(MADConfig.all())
        diff = diff_run_reports(base, other)
        assert diff["spans"]
        mutate(diff)
        with pytest.raises(ValueError, match="invalid cost diff"):
            validate_cost_diff(diff)


class TestRendering:
    def test_attribution_table_contents(self):
        base = traced_bootstrap_report(MADConfig.none())
        other = traced_bootstrap_report(MADConfig.all())
        diff = diff_run_reports(base, other)
        text = render_attribution_table(diff, top=5)
        assert "Stream" in text and "key_read" in text
        assert "Span path" in text and "share" in text
        assert "more changed spans" in text  # truncation notice
        assert "Counter" in text

    def test_overlay_trace_two_processes(self):
        base = traced_bootstrap_report(MADConfig.none())
        other = traced_bootstrap_report(MADConfig.all())
        diff = diff_run_reports(base, other)
        overlay = build_overlay_trace(base, other, diff)
        json.dumps(overlay)
        events = overlay["traceEvents"]
        pids = {e["pid"] for e in events}
        assert pids == {1, 2}
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(base["spans"]) + len(other["spans"])
        deltas = [e for e in complete if "delta" in e["args"]]
        assert deltas and all(e["pid"] == 2 for e in deltas)
