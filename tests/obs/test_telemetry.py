"""Snapshot capture/merge/graft and volatile-field stripping.

The merge property tests use **integer** metric values throughout:
float summation is not associative, and the engine's canonical-order
merge only promises bit-identity because the analytical cost model is
integer-exact.
"""

import copy

from hypothesis import given, settings, strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    SNAPSHOT_VERSION,
    capture_snapshot,
    graft_snapshot,
    merge_into_registry,
    merge_snapshots,
    strip_volatile,
)
from repro.obs.tracer import Tracer
from repro.perf.events import CostReport, MemTraffic, OpCount

_NAMES = st.sampled_from(["sweep.points", "ntt.calls", "cache.fit", "memo"])


@st.composite
def snapshots(draw):
    counters = draw(st.dictionaries(_NAMES, st.integers(0, 10_000), max_size=3))
    gauges = draw(st.dictionaries(_NAMES, st.integers(-100, 100), max_size=3))
    histograms = {}
    for name in draw(st.lists(_NAMES, max_size=2, unique=True)):
        values = draw(st.lists(st.integers(0, 1000), min_size=1, max_size=5))
        histograms[name] = {
            "count": len(values),
            "total": sum(values),
            "min": min(values),
            "max": max(values),
        }
    span_names = draw(st.lists(st.sampled_from(["Mult", "Add"]), max_size=2))
    spans = [
        {
            "name": name,
            "meta": {"index": i},
            "start": float(i),
            "end": float(i + 1),
            "cost": None,
            "children": [],
        }
        for i, name in enumerate(span_names)
    ]
    return {
        "version": SNAPSHOT_VERSION,
        "spans": spans,
        "metrics": {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        },
    }


class TestMergeProperties:
    @settings(max_examples=50, deadline=None)
    @given(parts=st.lists(snapshots(), min_size=1, max_size=4))
    def test_merge_is_a_left_fold(self, parts):
        # One-shot merge == folding the parts in pairs, same order.
        folded = parts[0]
        for part in parts[1:]:
            folded = merge_snapshots([folded, part])
        assert merge_snapshots(parts) == folded

    @settings(max_examples=50, deadline=None)
    @given(a=snapshots(), b=snapshots(), c=snapshots())
    def test_merge_is_associative(self, a, b, c):
        left = merge_snapshots([merge_snapshots([a, b]), c])
        right = merge_snapshots([a, merge_snapshots([b, c])])
        assert left == right

    @settings(max_examples=50, deadline=None)
    @given(parts=st.lists(snapshots(), min_size=1, max_size=4))
    def test_merge_does_not_mutate_inputs(self, parts):
        originals = copy.deepcopy(parts)
        merge_snapshots(parts)
        assert parts == originals

    @settings(max_examples=50, deadline=None)
    @given(parts=st.lists(snapshots(), min_size=2, max_size=4))
    def test_counters_sum_and_spans_concatenate(self, parts):
        merged = merge_snapshots(parts)
        for name in merged["metrics"]["counters"]:
            expected = sum(
                p["metrics"]["counters"].get(name, 0) for p in parts
            )
            assert merged["metrics"]["counters"][name] == expected
        assert len(merged["spans"]) == sum(len(p["spans"]) for p in parts)

    @settings(max_examples=50, deadline=None)
    @given(parts=st.lists(snapshots(), min_size=2, max_size=4))
    def test_gauges_are_last_write_wins(self, parts):
        merged = merge_snapshots(parts)
        for name, value in merged["metrics"]["gauges"].items():
            last = [
                p["metrics"]["gauges"][name]
                for p in parts
                if name in p["metrics"]["gauges"]
            ][-1]
            assert value == last


class TestCaptureAndGraft:
    def _traced(self):
        clock = iter(range(100))
        tracer = Tracer(clock=lambda: float(next(clock)))
        registry = MetricsRegistry()
        with tracer.span("Bootstrap", phase="test"):
            with tracer.span("Mult") as span:
                span.record_cost(
                    CostReport(OpCount(mults=7), MemTraffic(ct_read=64))
                )
        registry.counter("ntt.calls").inc(3)
        registry.gauge("cache.mb").set(32)
        registry.histogram("chunk.points").observe(4)
        return tracer, registry

    def test_capture_shape(self):
        tracer, registry = self._traced()
        snapshot = capture_snapshot(tracer, registry)
        assert snapshot["version"] == SNAPSHOT_VERSION
        (root,) = snapshot["spans"]
        assert root["name"] == "Bootstrap"
        assert root["start"] == 0.0  # rebased to earliest root
        (child,) = root["children"]
        assert child["cost"].ops.mults == 7
        assert snapshot["metrics"]["counters"] == {"ntt.calls": 3}

    def test_graft_rebuilds_spans_under_current(self):
        tracer, registry = self._traced()
        snapshot = capture_snapshot(tracer, registry)
        parent = Tracer(clock=lambda: 1000.0)
        with parent.span("sweep:run"):
            grafted = graft_snapshot(snapshot, parent)
        (run,) = parent.roots
        assert [s.name for s in run.children] == ["Bootstrap"]
        (bootstrap,) = grafted
        assert bootstrap.parent is run
        assert bootstrap.start >= 1000.0  # rebased onto the parent clock
        (mult,) = bootstrap.children
        assert mult.cost == CostReport(OpCount(mults=7), MemTraffic(ct_read=64))
        # Cost attribution survives the pickle-shaped round trip exactly.
        assert parent.total_cost() == tracer.total_cost()

    def test_capture_graft_capture_is_stable(self):
        tracer, registry = self._traced()
        first = capture_snapshot(tracer, registry)
        replayed = Tracer(clock=lambda: 0.0)
        graft_snapshot(first, replayed)
        second = capture_snapshot(replayed, registry)
        assert second["spans"] == first["spans"]

    def test_merge_into_registry(self):
        tracer, registry = self._traced()
        snapshot = capture_snapshot(tracer, registry)
        target = MetricsRegistry()
        target.counter("ntt.calls").inc(10)
        merge_into_registry(snapshot, target)
        assert target.counter("ntt.calls").value == 13
        assert target.gauge("cache.mb").value == 32
        assert target.histogram("chunk.points").count == 1


class TestStripVolatile:
    def _report(self):
        return {
            "schema": "repro.obs.run_report/v1.1",
            "command": "sweep table5",
            "wall_seconds": 1.25,
            "provenance": {"git_sha": "abc"},
            "resources": {"peak_rss_bytes": 123},
            "workers": [{"pid": 1}],
            "runtime": {"wall_seconds": 0.5, "cpu_seconds": 0.4},
            "spans": [
                {
                    "name": "sweep:run",
                    "start_us": 10,
                    "duration_us": 20,
                    "meta": {"jobs": 4},
                    "children": [
                        {
                            "name": "sweep:point",
                            "start_us": 11,
                            "duration_us": 5,
                            "meta": {
                                "index": 0,
                                "resource": {"rss_peak_bytes": 9},
                            },
                            "children": [],
                        }
                    ],
                }
            ],
            "metrics": {
                "counters": {
                    "sweep.points": 24,
                    "sweep.chunks.evaluated": 6,
                    "sweep.memo.hits": 3,
                },
                "gauges": {"sweep.jobs": 4, "cache.mb": 32},
                "histograms": {},
            },
        }

    def test_strips_scheduling_dependent_fields(self):
        stripped = strip_volatile(self._report())
        assert "provenance" not in stripped
        assert "resources" not in stripped
        assert "workers" not in stripped
        assert stripped["wall_seconds"] == 0.0
        assert stripped["runtime"] == {"wall_seconds": 0.0}
        run = stripped["spans"][0]
        assert run["start_us"] == 0 and run["duration_us"] == 0
        assert run["meta"]["jobs"] == 0
        point = run["children"][0]
        assert "resource" not in point["meta"]
        assert point["meta"]["index"] == 0  # stable meta survives
        counters = stripped["metrics"]["counters"]
        assert counters == {"sweep.points": 24}
        assert stripped["metrics"]["gauges"] == {"cache.mb": 32}

    def test_input_not_mutated(self):
        report = self._report()
        original = copy.deepcopy(report)
        strip_volatile(report)
        assert report == original

    def test_two_schedules_strip_to_identical_reports(self):
        serial = self._report()
        parallel = copy.deepcopy(serial)
        parallel["wall_seconds"] = 9.0
        parallel["workers"] = [{"pid": 2}, {"pid": 3}]
        parallel["spans"][0]["meta"]["jobs"] = 2
        parallel["spans"][0]["children"][0]["meta"]["resource"] = {
            "rss_peak_bytes": 77
        }
        parallel["metrics"]["counters"]["sweep.chunks.evaluated"] = 2
        assert strip_volatile(serial) == strip_volatile(parallel)
