"""Global-registry hygiene: reset, scoped and suppressed state."""

from repro.obs import state as obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer


class TestReset:
    def test_reset_clears_installed_state(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        with obs.capture(tracer, registry):
            obs.count("x")
            obs.reset()
            assert obs.get_tracer() is NULL_TRACER
            assert not obs.tracing_enabled()
            assert not obs.metrics_enabled()
            assert obs.metrics() is not registry


class TestScoped:
    def test_scoped_isolates_and_restores(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        with obs.capture(tracer, registry):
            registry_before = obs.metrics()
            with obs.scoped():
                # Inside the scope: pristine state, nothing bleeds in.
                assert obs.get_tracer() is NULL_TRACER
                assert not obs.metrics_enabled()
                assert obs.metrics() is not registry_before
                obs.count("leak")
            # Outside: the captured state is back, untouched.
            assert obs.get_tracer() is tracer
            assert obs.metrics() is registry_before
            assert obs.tracing_enabled()
            assert "leak" not in registry.counters()

    def test_scoped_restores_on_exception(self):
        tracer = Tracer()
        with obs.capture(tracer, MetricsRegistry()):
            try:
                with obs.scoped():
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
            assert obs.get_tracer() is tracer
            assert obs.tracing_enabled()

    def test_back_to_back_scopes_do_not_share_registries(self):
        with obs.scoped():
            first = obs.metrics()
        with obs.scoped():
            assert obs.metrics() is not first


class TestSuppressed:
    def test_suppressed_hides_spans_and_metrics(self):
        with obs.capture() as (tracer, registry):
            with obs.span("visible"):
                pass
            with obs.suppressed():
                with obs.span("hidden"):
                    pass
                obs.count("hidden.count")
            with obs.span("visible2"):
                pass
        assert [span.name for span in tracer.roots] == ["visible", "visible2"]
        assert "hidden.count" not in registry.counters()

    def test_suppressed_restores_on_exception(self):
        with obs.capture() as (tracer, _registry):
            try:
                with obs.suppressed():
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
            assert obs.get_tracer() is tracer
            assert obs.tracing_enabled()


class TestCliMainIsScoped:
    def test_main_does_not_leak_observability_state(self, capsys):
        from repro.cli import main

        tracer = Tracer()
        registry = MetricsRegistry()
        with obs.capture(tracer, registry):
            # A traced command must not record into *our* tracer, and the
            # state we installed must survive the invocation.
            assert main(["table4"]) == 0
            assert obs.get_tracer() is tracer
            assert obs.metrics() is registry
            assert tracer.roots == []
            assert registry.counters() == {}
        capsys.readouterr()
