"""Chrome trace, flat profile, roofline attribution and run_report.json."""

import json

import pytest

from repro.hardware import PRIOR_DESIGNS
from repro.obs import MetricsRegistry, Tracer, state
from repro.obs.export import (
    RUN_REPORT_SCHEMA,
    SCHEMA_ID,
    attribute_runtime,
    build_run_report,
    compute_span_paths,
    cost_dict,
    render_flat_profile,
    to_chrome_trace,
    validate_run_report,
    write_chrome_trace,
)
from repro.params import BASELINE_JUNG
from repro.perf import BootstrapModel, MADConfig
from repro.perf.events import CostReport, MemTraffic, OpCount

BOOTSTRAP_PHASES = ("ModRaise", "CoeffToSlot", "EvalMod", "SlotToCoeff")


@pytest.fixture(scope="module")
def traced_bootstrap():
    """One traced bootstrap run: (tracer, registry, untraced total)."""
    model = BootstrapModel(BASELINE_JUNG, MADConfig.none())
    untraced = model.total_cost()
    with state.capture() as (tracer, registry):
        model.ledger()
    return tracer, registry, untraced


class TestChromeTrace:
    def test_structure(self, traced_bootstrap):
        tracer, _, _ = traced_bootstrap
        doc = to_chrome_trace(tracer, metadata={"params": "baseline"})
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"] == {"params": "baseline"}
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == sum(1 for _ in tracer.spans())
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["cat"] == "repro"

    def test_covers_all_bootstrap_phases(self, traced_bootstrap):
        tracer, _, _ = traced_bootstrap
        names = {e["name"] for e in to_chrome_trace(tracer)["traceEvents"]}
        for phase in BOOTSTRAP_PHASES:
            assert phase in names

    def test_costed_spans_carry_cost_args(self, traced_bootstrap):
        tracer, _, untraced = traced_bootstrap
        events = to_chrome_trace(tracer)["traceEvents"]
        costed = [e for e in events if e["ph"] == "X" and "cost" in e["args"]]
        assert costed
        assert sum(e["args"]["ops"] for e in costed) == untraced.ops.total
        assert sum(e["args"]["bytes"] for e in costed) == untraced.traffic.total

    def test_is_json_serializable(self, traced_bootstrap):
        tracer, _, _ = traced_bootstrap
        json.dumps(to_chrome_trace(tracer))

    def test_write_to_disk(self, traced_bootstrap, tmp_path):
        tracer, _, _ = traced_bootstrap
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path))
        assert json.loads(path.read_text())["traceEvents"]

    def test_unserializable_meta_falls_back_to_repr(self):
        tracer = Tracer()
        with tracer.span("s", obj=object()):
            pass
        doc = to_chrome_trace(tracer)
        json.dumps(doc)  # must not raise
        assert "object" in doc["traceEvents"][1]["args"]["obj"]


class TestFlatProfile:
    def test_totals_match_model(self, traced_bootstrap):
        tracer, _, untraced = traced_bootstrap
        text = render_flat_profile(tracer)
        assert "Span" in text and "Ops%" in text
        total_line = text.splitlines()[-1]
        assert f"{untraced.giga_ops():9.2f}" in total_line
        assert "100.0%" in total_line

    def test_long_names_are_truncated(self):
        tracer = Tracer()
        with tracer.span("x" * 60):
            pass
        for line in render_flat_profile(tracer).splitlines():
            if "…" in line:
                break
        else:
            pytest.fail("expected a truncated span label")

    def test_empty_tracer(self):
        text = render_flat_profile(Tracer())
        assert "Total" in text


class TestAttributeRuntime:
    def test_annotates_costed_spans(self, traced_bootstrap):
        tracer, _, untraced = traced_bootstrap
        design = PRIOR_DESIGNS["BTS"]
        overall = attribute_runtime(tracer, design)
        assert overall is not None
        assert overall.seconds > 0
        costed = [s for s in tracer.spans() if s.total_cost() is not None]
        assert costed
        for span in costed:
            assert span.meta["design"] == design.name
            assert span.meta["bound"] in ("compute", "memory")
            assert span.meta["roofline_seconds"] == pytest.approx(
                max(span.meta["compute_seconds"], span.meta["memory_seconds"])
            )

    def test_empty_tracer_returns_none(self):
        assert attribute_runtime(Tracer(), PRIOR_DESIGNS["BTS"]) is None


class TestRunReport:
    def test_build_and_validate(self, traced_bootstrap):
        tracer, registry, untraced = traced_bootstrap
        report = build_run_report(
            tracer,
            registry,
            command="trace bootstrap",
            workload="bootstrap",
            params="baseline",
            config={"cache_o1": False},
        )
        validate_run_report(report)
        json.dumps(report)
        assert report["schema"] == SCHEMA_ID
        assert report["totals"]["ops"] == {
            "mults": untraced.ops.mults,
            "adds": untraced.ops.adds,
            "total": untraced.ops.total,
        }
        assert report["totals"]["traffic"]["total"] == untraced.traffic.total
        assert len(report["spans"]) == sum(1 for _ in tracer.spans())
        assert report["metrics"]["counters"]

    def test_schema_constant_is_draft07(self):
        assert RUN_REPORT_SCHEMA["$id"] == SCHEMA_ID
        assert "required" in RUN_REPORT_SCHEMA

    def test_empty_tracer_report_is_valid(self):
        report = build_run_report(Tracer(), MetricsRegistry(), command="x")
        validate_run_report(report)
        assert report["totals"]["ops"]["total"] == 0
        assert report["totals"]["arithmetic_intensity"] == 0.0

    def test_all_compute_run_serializes_infinite_ai_as_minus_one(self):
        tracer = Tracer()
        with tracer.span("s"):
            tracer.record_cost(CostReport(OpCount(mults=5), MemTraffic()))
        report = build_run_report(tracer, MetricsRegistry(), command="x")
        validate_run_report(report)
        json.dumps(report)  # inf would not survive strict JSON
        assert report["totals"]["arithmetic_intensity"] == -1.0

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda r: r.pop("spans"),
            lambda r: r.pop("metrics"),
            lambda r: r.update(schema="bogus/v0"),
            lambda r: r.update(wall_seconds=-1.0),
            lambda r: r["totals"]["ops"].update(total=-5),
            lambda r: r["spans"].append({"name": "x"}),
            lambda r: r["metrics"].pop("counters"),
        ],
    )
    def test_rejects_corrupted_reports(self, traced_bootstrap, corrupt):
        tracer, registry, _ = traced_bootstrap
        report = build_run_report(tracer, registry, command="trace bootstrap")
        corrupt(report)
        with pytest.raises(ValueError):
            validate_run_report(report)

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            validate_run_report([])

    def test_matches_jsonschema_if_available(self, traced_bootstrap):
        jsonschema = pytest.importorskip("jsonschema")
        tracer, registry, _ = traced_bootstrap
        report = build_run_report(tracer, registry, command="trace bootstrap")
        jsonschema.validate(report, RUN_REPORT_SCHEMA)

    def test_cost_dict_roundtrip(self):
        cost = CostReport(OpCount(3, 4), MemTraffic(1, 2, 3, 4))
        payload = cost_dict(cost)
        assert payload["ops"]["total"] == 7
        assert payload["traffic"]["total"] == 10
        assert payload["arithmetic_intensity"] == cost.arithmetic_intensity


class TestSpanPaths:
    def test_repeated_siblings_are_disambiguated(self):
        paths = compute_span_paths(
            [("Root", 0), ("Iter", 1), ("Iter", 1), ("Iter", 1)]
        )
        assert paths == ["Root", "Root/Iter", "Root/Iter#2", "Root/Iter#3"]

    def test_occurrence_counts_reset_per_parent(self):
        paths = compute_span_paths(
            [("A", 0), ("Leaf", 1), ("B", 0), ("Leaf", 1)]
        )
        assert paths == ["A", "A/Leaf", "B", "B/Leaf"]

    def test_nested_repeats(self):
        paths = compute_span_paths(
            [("Root", 0), ("Phase", 1), ("Step", 2), ("Phase", 1), ("Step", 2)]
        )
        assert paths[3] == "Root/Phase#2"
        assert paths[4] == "Root/Phase#2/Step"

    def test_forest_roots_are_disambiguated(self):
        paths = compute_span_paths([("Run", 0), ("Run", 0)])
        assert paths == ["Run", "Run#2"]

    def test_depth_jump_rejected(self):
        with pytest.raises(ValueError, match="depth"):
            compute_span_paths([("Root", 0), ("Orphan", 2)])

    def test_paths_are_unique_and_stable_in_real_trace(self, traced_bootstrap):
        tracer, registry, _ = traced_bootstrap
        report = build_run_report(tracer, registry, command="x")
        paths = [span["path"] for span in report["spans"]]
        assert len(paths) == len(set(paths))
        # A second identical run must produce the identical path sequence.
        from repro.obs import state
        from repro.params import BASELINE_JUNG
        from repro.perf import BootstrapModel, MADConfig

        with state.capture() as (tracer2, registry2):
            BootstrapModel(BASELINE_JUNG, MADConfig.none()).ledger()
        report2 = build_run_report(tracer2, registry2, command="x")
        assert [s["path"] for s in report2["spans"]] == paths

    def test_no_volatile_values_in_bootstrap_span_names(self, traced_bootstrap):
        """Labels must be constant across runs: indices/limb counts belong
        in span attributes (meta), never in the name."""
        tracer, _, _ = traced_bootstrap
        for span in tracer.spans():
            assert not any(ch.isdigit() for ch in span.name), span.name

    def test_report_spans_missing_path_rejected(self, traced_bootstrap):
        tracer, registry, _ = traced_bootstrap
        report = build_run_report(tracer, registry, command="x")
        del report["spans"][0]["path"]
        with pytest.raises(ValueError, match="path"):
            validate_run_report(report)
