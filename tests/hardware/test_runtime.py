import pytest

from repro.params import BASELINE_JUNG, MAD_OPTIMAL
from repro.perf import BootstrapModel, MADConfig
from repro.perf.events import CostReport, MemTraffic, OpCount
from repro.hardware import (
    CRATERLAKE,
    GPU_JUNG,
    HardwareDesign,
    RuntimeEstimate,
    estimate_runtime,
    mad_counterpart,
)


class TestRuntimeEstimate:
    def test_roofline_is_max(self):
        est = RuntimeEstimate(compute_seconds=0.2, memory_seconds=0.5)
        assert est.seconds == 0.5
        assert est.bound == "memory"

    def test_compute_bound(self):
        est = RuntimeEstimate(compute_seconds=0.5, memory_seconds=0.2)
        assert est.bound == "compute"
        assert est.balance == pytest.approx(2.5)

    def test_milliseconds(self):
        est = RuntimeEstimate(0.01, 0.02)
        assert est.milliseconds == pytest.approx(20.0)


class TestEstimateRuntime:
    def test_manual_numbers(self):
        cost = CostReport(
            OpCount(mults=1_000_000_000),
            MemTraffic(ct_read=2_000_000_000),
        )
        design = HardwareDesign(
            name="x",
            modular_multipliers=1000,
            on_chip_mb=32,
            bandwidth_gb_s=100,
            params=BASELINE_JUNG,
        )
        est = estimate_runtime(cost, design)
        assert est.compute_seconds == pytest.approx(1e9 / 1e12)
        assert est.memory_seconds == pytest.approx(2e9 / 1e11)
        assert est.bound == "memory"

    def test_baseline_bootstrap_on_gpu_is_memory_bound(self):
        """The paper's core observation: bootstrapping is memory-bound on
        realistic hardware without MAD optimizations."""
        cost = BootstrapModel(BASELINE_JUNG, MADConfig.none()).total_cost()
        est = estimate_runtime(cost, GPU_JUNG)
        assert est.bound == "memory"

    def test_mad_reduces_gpu_bootstrap_runtime(self):
        base = estimate_runtime(
            BootstrapModel(BASELINE_JUNG, MADConfig.none()).total_cost(),
            GPU_JUNG,
        )
        optimized = estimate_runtime(
            BootstrapModel(MAD_OPTIMAL, MADConfig.all()).total_cost(),
            mad_counterpart(GPU_JUNG),
        )
        assert optimized.seconds < base.seconds / 2

    def test_more_bandwidth_helps_when_memory_bound(self):
        cost = BootstrapModel(BASELINE_JUNG).total_cost()
        slow = estimate_runtime(cost, GPU_JUNG)
        fast = estimate_runtime(
            cost, mad_counterpart(CRATERLAKE).with_params(BASELINE_JUNG)
        )
        assert fast.memory_seconds < slow.memory_seconds
