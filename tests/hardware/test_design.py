import pytest

from repro.params import BASELINE_JUNG, MAD_OPTIMAL
from repro.hardware import (
    ARK,
    BTS,
    CRATERLAKE,
    F1,
    GPU_JUNG,
    HardwareDesign,
    PRIOR_DESIGNS,
    mad_counterpart,
)


class TestDesignValidation:
    def test_rejects_nonpositive_multipliers(self):
        with pytest.raises(ValueError):
            HardwareDesign(
                name="bad",
                modular_multipliers=0,
                on_chip_mb=32,
                bandwidth_gb_s=1000,
                params=BASELINE_JUNG,
            )

    def test_rejects_nonpositive_memory(self):
        with pytest.raises(ValueError):
            HardwareDesign(
                name="bad",
                modular_multipliers=1024,
                on_chip_mb=0,
                bandwidth_gb_s=1000,
                params=BASELINE_JUNG,
            )

    def test_compute_throughput(self):
        d = HardwareDesign(
            name="x",
            modular_multipliers=1000,
            on_chip_mb=32,
            bandwidth_gb_s=500,
            params=BASELINE_JUNG,
            frequency_ghz=2.0,
        )
        assert d.compute_ops_per_second == 2e12
        assert d.bandwidth_bytes_per_second == 5e11


class TestPresets:
    def test_all_prior_designs_registered(self):
        assert set(PRIOR_DESIGNS) == {
            "GPU [Jung et al.]",
            "F1",
            "BTS",
            "ARK",
            "CraterLake",
        }

    def test_table6_characteristics(self):
        assert GPU_JUNG.on_chip_mb == 6 and GPU_JUNG.bandwidth_gb_s == 900
        assert F1.modular_multipliers == 18432 and F1.on_chip_mb == 64
        assert BTS.modular_multipliers == 8192 and BTS.on_chip_mb == 512
        assert ARK.modular_multipliers == 20480
        assert CRATERLAKE.bandwidth_gb_s == 2400

    def test_f1_is_unpacked(self):
        # F1 bootstraps a single element -> throughput collapses (Table 6).
        assert F1.slots == 1

    def test_packed_designs_use_half_ring(self):
        assert GPU_JUNG.slots == 2**16
        assert BTS.slots == 2**16

    def test_log_q1_matches_table6(self):
        assert GPU_JUNG.params.log_q1 == 1080
        assert F1.params.log_q1 == 416
        assert ARK.params.log_q1 == 432
        assert CRATERLAKE.params.log_q1 == 532

    def test_designs_support_bootstrapping(self):
        for design in PRIOR_DESIGNS.values():
            assert design.params.supports_bootstrapping()


class TestMadCounterpart:
    def test_matches_compute_and_bandwidth(self):
        mad = mad_counterpart(CRATERLAKE)
        assert mad.modular_multipliers == CRATERLAKE.modular_multipliers
        assert mad.bandwidth_gb_s == CRATERLAKE.bandwidth_gb_s
        assert mad.frequency_ghz == CRATERLAKE.frequency_ghz

    def test_uses_32_mb_and_optimal_params(self):
        mad = mad_counterpart(BTS)
        assert mad.on_chip_mb == 32
        assert mad.params == MAD_OPTIMAL

    def test_custom_memory(self):
        mad = mad_counterpart(BTS, on_chip_mb=512)
        assert mad.on_chip_mb == 512
        assert "512" in mad.name

    def test_with_memory_helper(self):
        bigger = GPU_JUNG.with_memory(32)
        assert bigger.on_chip_mb == 32
        assert bigger.params == GPU_JUNG.params
