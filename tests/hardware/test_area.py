import pytest

from repro.hardware import BTS, CRATERLAKE, mad_counterpart
from repro.hardware.area import (
    NODES,
    TechnologyNode,
    chip_area,
    performance_per_cost,
    relative_cost,
)


class TestNodes:
    def test_known_nodes_present(self):
        assert {"7nm", "14nm", "28nm"} <= set(NODES)

    def test_advanced_nodes_denser_but_pricier(self):
        assert NODES["7nm"].sram_mm2_per_mb < NODES["28nm"].sram_mm2_per_mb
        assert NODES["7nm"].cost_per_mm2 > NODES["28nm"].cost_per_mm2

    def test_rejects_bad_characteristics(self):
        with pytest.raises(ValueError):
            TechnologyNode("x", 0, 1, 1)


class TestChipArea:
    def test_bts_area_magnitude(self):
        # BTS: 512 MB + 8192 multipliers at 7 nm reported ~373 mm^2;
        # our coarse model must land in the right ballpark.
        est = chip_area(BTS, NODES["7nm"])
        assert 150 <= est.total_mm2 <= 600

    def test_memory_dominates_large_cache_designs(self):
        """Section 4.4: large on-chip memory dominates chip area."""
        est = chip_area(BTS, NODES["7nm"])
        assert est.memory_fraction > 0.8

    def test_mad_counterpart_is_much_smaller(self):
        node = NODES["7nm"]
        original = chip_area(BTS, node)
        mad = chip_area(mad_counterpart(BTS), node)
        # 512 -> 32 MB is a 16x memory reduction; SRAM area follows.
        assert original.sram_mm2 / mad.sram_mm2 == pytest.approx(16.0)
        assert mad.total_mm2 < original.total_mm2 / 4

    def test_logic_area_scales_with_multipliers(self):
        node = NODES["7nm"]
        assert (
            chip_area(CRATERLAKE, node).logic_mm2
            > chip_area(BTS, node).logic_mm2
        )


class TestCost:
    def test_cost_reduction_tracks_memory_reduction(self):
        """The abstract's claim: 16x less memory 'proportionally reduces
        the cost of the solution'."""
        node = NODES["7nm"]
        ratio = relative_cost(BTS, node) / relative_cost(
            mad_counterpart(BTS), node
        )
        assert ratio > 4  # memory dominates, so cost drops several-fold

    def test_performance_per_cost_favors_mad_when_runtime_close(self):
        node = NODES["7nm"]
        # Even if the MAD design is ~1.5x slower, its perf/cost wins.
        original = performance_per_cost(0.050, BTS, node)
        mad = performance_per_cost(0.075, mad_counterpart(BTS), node)
        assert mad > original

    def test_runtime_validation(self):
        with pytest.raises(ValueError):
            performance_per_cost(0, BTS, NODES["7nm"])
