import pytest

from repro.params import MAD_OPTIMAL
from repro.perf import BootstrapModel, MADConfig
from repro.perf.events import CostReport, MemTraffic, OpCount
from repro.hardware import BTS, GPU_JUNG, mad_counterpart
from repro.hardware.roofline import balance_point, render_balance


class TestBalancePoint:
    def test_manual_numbers(self):
        # 10 Gops on 1000 mults @1GHz = 10 ms compute; 5 GB @1TB/s = 5 ms.
        cost = CostReport(
            OpCount(mults=10 * 10**9), MemTraffic(ct_read=5 * 10**9)
        )
        from repro.hardware import HardwareDesign
        from repro.params import BASELINE_JUNG

        design = HardwareDesign(
            name="x",
            modular_multipliers=1000,
            on_chip_mb=32,
            bandwidth_gb_s=1000,
            params=BASELINE_JUNG,
        )
        point = balance_point(cost, design)
        assert point.runtime.bound == "compute"
        assert point.compute_scaling == pytest.approx(2.0)
        assert point.bandwidth_scaling == pytest.approx(0.5)
        # Balanced at current compute: 5 GB over 10 ms = 500 GB/s.
        assert point.balanced_bandwidth_gb_s == pytest.approx(500.0)
        # Balanced at current bandwidth: 10 Gops in 5 ms = 2000 mults.
        assert point.balanced_multipliers == 2000

    def test_mad_bootstrap_balance_on_designs(self):
        cost = BootstrapModel(MAD_OPTIMAL, MADConfig.all()).total_cost()
        point = balance_point(cost, mad_counterpart(BTS))
        # In our model the MAD design points are memory-bound -> balance
        # needs more bandwidth, not more compute.
        assert point.runtime.bound == "memory"
        assert point.bandwidth_scaling > 1.0
        assert point.balanced_multipliers < BTS.modular_multipliers

    def test_zero_sided_workload_rejected(self):
        with pytest.raises(ValueError):
            balance_point(CostReport(OpCount(mults=1)), GPU_JUNG)

    def test_render_mentions_bound_and_need(self):
        cost = BootstrapModel(MAD_OPTIMAL, MADConfig.all()).total_cost()
        text = render_balance("BTS+MAD", balance_point(cost, mad_counterpart(BTS)))
        assert "BTS+MAD" in text
        assert "bound" in text
        assert "balance" in text
