"""Preset-catalog integrity for ``hardware.designs``.

The preset names double as span labels and report keys (Table 6 rows,
``serve_report.json`` ``design`` fields, sweep axes), so they must stay
byte-stable; the parameters must stay positive and finite or the
roofline divides blow up; and every prior design needs a MAD
counterpart for the paper's pairwise comparison to be constructible.
"""

import dataclasses
import math

import pytest
from hypothesis import given, strategies as st

from repro.hardware import (
    PRIOR_DESIGNS,
    HardwareDesign,
    estimate_runtime,
    mad_counterpart,
)
from repro.perf.events import CostReport, MemTraffic, OpCount

#: The catalog as shipped; a rename here breaks committed baselines and
#: span labels, so the expected names are spelled out, not derived.
EXPECTED_NAMES = ("GPU [Jung et al.]", "F1", "BTS", "ARK", "CraterLake")


class TestPresetIntegrity:
    def test_catalog_names_are_stable(self):
        assert tuple(PRIOR_DESIGNS) == EXPECTED_NAMES

    def test_keys_match_design_names(self):
        for key, design in PRIOR_DESIGNS.items():
            assert key == design.name

    @pytest.mark.parametrize("name", EXPECTED_NAMES)
    def test_parameters_positive_and_finite(self, name):
        design = PRIOR_DESIGNS[name]
        for value in (
            design.modular_multipliers,
            design.on_chip_mb,
            design.bandwidth_gb_s,
            design.frequency_ghz,
            design.compute_ops_per_second,
            design.bandwidth_bytes_per_second,
        ):
            assert value > 0 and math.isfinite(value)

    @pytest.mark.parametrize("name", EXPECTED_NAMES)
    def test_every_preset_has_a_mad_counterpart(self, name):
        design = PRIOR_DESIGNS[name]
        mad = mad_counterpart(design)
        assert mad.name == f"{design.name}+MAD-32"
        assert mad.modular_multipliers == design.modular_multipliers
        assert mad.bandwidth_gb_s == design.bandwidth_gb_s
        assert mad.frequency_ghz == design.frequency_ghz
        assert mad.on_chip_mb == 32

    def test_counterpart_names_are_distinct_span_labels(self):
        names = [
            mad_counterpart(design).name
            for design in PRIOR_DESIGNS.values()
        ]
        assert len(set(names)) == len(names)
        assert set(names).isdisjoint(PRIOR_DESIGNS)


class TestDegenerateDesignsRejected:
    BASE = PRIOR_DESIGNS["BTS"]

    def test_nan_memory_rejected(self):
        with pytest.raises(ValueError, match="on_chip_mb"):
            dataclasses.replace(self.BASE, on_chip_mb=float("nan"))

    def test_infinite_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="bandwidth"):
            dataclasses.replace(self.BASE, bandwidth_gb_s=float("inf"))

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError, match="frequency_ghz"):
            dataclasses.replace(self.BASE, frequency_ghz=0.0)

    def test_estimate_runtime_names_a_smuggled_degenerate_rate(self):
        # dataclasses.replace re-runs __post_init__, so the only way to
        # reach estimate_runtime with a broken rate is to bypass
        # validation outright — which is exactly the hole the runtime
        # guard covers.
        broken = object.__new__(HardwareDesign)
        for field, value in dataclasses.asdict(self.BASE).items():
            object.__setattr__(broken, field, value)
        object.__setattr__(broken, "params", self.BASE.params)
        object.__setattr__(broken, "modular_multipliers", 0)
        cost = CostReport(ops=OpCount(mults=1), traffic=MemTraffic(ct_read=1))
        with pytest.raises(ValueError, match="compute_ops_per_second"):
            estimate_runtime(cost, broken)


#: A deliberately memory-bound cost: almost no compute, heavy traffic.
MEMORY_BOUND = CostReport(
    ops=OpCount(mults=1),
    traffic=MemTraffic(ct_read=10**9, key_read=10**9),
)


class TestRuntimeMonotoneInBandwidth:
    @given(
        low=st.floats(min_value=1.0, max_value=1e4),
        factor=st.floats(min_value=1.0, max_value=1e3),
    )
    def test_more_bandwidth_never_hurts_memory_bound_costs(
        self, low, factor
    ):
        slower = dataclasses.replace(
            PRIOR_DESIGNS["BTS"], bandwidth_gb_s=low
        )
        faster = dataclasses.replace(
            PRIOR_DESIGNS["BTS"], bandwidth_gb_s=low * factor
        )
        a = estimate_runtime(MEMORY_BOUND, slower)
        b = estimate_runtime(MEMORY_BOUND, faster)
        assert b.memory_seconds <= a.memory_seconds
        assert b.seconds <= a.seconds

    @given(bandwidth=st.floats(min_value=1.0, max_value=1e6))
    def test_memory_seconds_scale_inversely(self, bandwidth):
        design = dataclasses.replace(
            PRIOR_DESIGNS["BTS"], bandwidth_gb_s=bandwidth
        )
        estimate = estimate_runtime(MEMORY_BOUND, design)
        expected = MEMORY_BOUND.traffic.total / (bandwidth * 1e9)
        assert estimate.memory_seconds == pytest.approx(expected)
