"""Differential tests for the vectorized modular-reduction helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import (
    FAST_MODULUS_BOUND,
    SHOUP_SHIFT,
    add_mod,
    moduli_fit,
    mul_mod,
    mul_mod_shoup,
    shoup_precompute,
    sub_mod,
)

# Odd moduli spanning the full accepted range, including the boundary.
_modulus = st.integers(3, FAST_MODULUS_BOUND - 1).map(lambda q: q | 1)


class TestModuliFit:
    def test_accepts_below_bound(self):
        assert moduli_fit([3, 5, FAST_MODULUS_BOUND - 1])

    def test_rejects_at_bound(self):
        assert not moduli_fit([FAST_MODULUS_BOUND])

    def test_rejects_trivial_modulus(self):
        assert not moduli_fit([1])


class TestShoup:
    @settings(max_examples=200)
    @given(data=st.data(), q=_modulus)
    def test_matches_python_mulmod(self, data, q):
        x = data.draw(st.lists(st.integers(0, q - 1), min_size=1, max_size=8))
        w = data.draw(st.integers(0, q - 1))
        q_arr = np.asarray([q], dtype=np.int64)[:, np.newaxis]
        w_arr = np.asarray([[w]], dtype=np.int64)
        w_shoup = shoup_precompute(w_arr, q_arr)
        x_arr = np.asarray([x], dtype=np.int64)
        got = mul_mod_shoup(x_arr, w_arr, w_shoup, q_arr)
        assert got.tolist() == [[v * w % q for v in x]]

    def test_precompute_is_floor_quotient(self):
        q_arr = np.asarray([[97]], dtype=np.int64)
        w_arr = np.asarray([[53]], dtype=np.int64)
        got = shoup_precompute(w_arr, q_arr)
        assert got.dtype == np.uint64
        assert int(got[0, 0]) == (53 << SHOUP_SHIFT) // 97

    def test_boundary_prime_worst_case_operands(self):
        # Largest accepted modulus with maximal x and w: the overflow
        # analysis in the module docstring must hold right at the edge.
        q = FAST_MODULUS_BOUND - 1
        q_arr = np.asarray([[q]], dtype=np.int64)
        w_arr = np.asarray([[q - 1]], dtype=np.int64)
        x_arr = np.asarray([[q - 1]], dtype=np.int64)
        w_shoup = shoup_precompute(w_arr, q_arr)
        got = mul_mod_shoup(x_arr, w_arr, w_shoup, q_arr)
        assert int(got[0, 0]) == (q - 1) * (q - 1) % q


class TestElementwiseOps:
    @settings(max_examples=100)
    @given(data=st.data(), q=_modulus)
    def test_add_sub_mul_match_python(self, data, q):
        a = data.draw(st.lists(st.integers(0, q - 1), min_size=1, max_size=8))
        b = data.draw(
            st.lists(
                st.integers(0, q - 1), min_size=len(a), max_size=len(a)
            )
        )
        q_arr = np.asarray([q], dtype=np.int64)[:, np.newaxis]
        a_arr = np.asarray([a], dtype=np.int64)
        b_arr = np.asarray([b], dtype=np.int64)
        assert add_mod(a_arr, b_arr, q_arr).tolist() == [
            [(x + y) % q for x, y in zip(a, b)]
        ]
        assert sub_mod(a_arr, b_arr, q_arr).tolist() == [
            [(x - y) % q for x, y in zip(a, b)]
        ]
        assert mul_mod(a_arr, b_arr, q_arr).tolist() == [
            [x * y % q for x, y in zip(a, b)]
        ]
