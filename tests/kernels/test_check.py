"""The differential-check harness behind ``repro kernels``."""

import pytest

from repro.kernels.check import (
    KERNELS_REPORT_SCHEMA,
    render_report,
    run_check,
    sample_rows,
    validate_kernels_report,
)


class TestRunCheck:
    def test_parity_passes_at_small_degrees(self):
        report = run_check(degrees=(64, 128), limbs=2, repeats=1)
        validate_kernels_report(report)
        assert report["schema"] == KERNELS_REPORT_SCHEMA
        assert report["passed"]
        assert [e["degree"] for e in report["results"]] == [64, 128]
        assert all(e["parity"] for e in report["results"])
        assert [e["degree"] for e in report["runtime"]] == [64, 128]
        assert all(e["speedup"] > 0 for e in report["runtime"])

    def test_parity_only_skips_timing(self):
        report = run_check(degrees=(64,), limbs=1, parity_only=True)
        assert report["runtime"] == []
        assert report["passed"]

    def test_unreachable_min_speedup_fails(self):
        # The oracle cannot be 1e9x slower; the gate must trip while
        # parity itself stays green.
        report = run_check(
            degrees=(64,), limbs=1, repeats=1, min_speedup=1e9
        )
        assert not report["passed"]
        assert all(e["parity"] for e in report["results"])

    def test_rows_are_seed_deterministic_with_boundaries(self):
        moduli = (97, 193)
        first = sample_rows(16, moduli, seed=7)
        assert first == sample_rows(16, moduli, seed=7)
        assert first != sample_rows(16, moduli, seed=8)
        for row, q in zip(first, moduli):
            assert row[0] == 0 and row[1] == q - 1 and row[-1] == q - 1


class TestValidateAndRender:
    def test_validator_rejects_wrong_schema(self):
        report = run_check(degrees=(64,), limbs=1, parity_only=True)
        report["schema"] = "repro.kernels/v0"
        with pytest.raises(ValueError):
            validate_kernels_report(report)

    def test_validator_rejects_missing_fields(self):
        report = run_check(degrees=(64,), limbs=1, parity_only=True)
        del report["results"][0]["parity"]
        with pytest.raises(ValueError):
            validate_kernels_report(report)

    def test_render_mentions_every_degree_and_verdict(self):
        report = run_check(degrees=(64,), limbs=2, repeats=1)
        text = render_report(report)
        assert "N=2^6" in text
        assert "speedup" in text
        assert text.endswith("PASS")
