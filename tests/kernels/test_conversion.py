"""Differential tests for the vectorized RNS basis-conversion kernels."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import kernels
from repro.kernels import new_limbs_matrix, sub_scale_mod
from repro.numth import find_ntt_primes
from repro.ring import Representation, RnsBasis, RnsPolynomial
from repro.ring.conversion import mod_down, mod_up, new_limb, rescale


def _random_rows(primes, degree, seed):
    rng = random.Random(seed)
    return [[rng.randrange(q) for _ in range(degree)] for q in primes]


class TestNewLimbsMatrix:
    @settings(max_examples=20, deadline=None)
    @given(
        log_n=st.integers(2, 6),
        source_limbs=st.integers(1, 8),
        target_limbs=st.integers(1, 3),
        seed=st.integers(0, 2**32),
    )
    def test_matches_oracle_new_limb(
        self, log_n, source_limbs, target_limbs, seed
    ):
        degree = 1 << log_n
        primes = find_ntt_primes(30, degree, source_limbs + target_limbs)
        basis = RnsBasis(degree, primes[:source_limbs])
        targets = primes[source_limbs:]
        rows = _random_rows(basis.moduli, degree, seed)
        got = new_limbs_matrix(
            rows,
            list(basis.moduli),
            basis.q_hat_inverses(),
            [basis.q_stars_mod(t) for t in targets],
            targets,
        )
        assert got == [new_limb(rows, basis, t) for t in targets]

    def test_deep_basis_accumulator_stays_exact(self):
        # Twelve maximal source limbs: the per-limb canonical reduction is
        # what keeps the int64 accumulator from overflowing here.
        degree = 16
        primes = find_ntt_primes(30, degree, 13)
        basis = RnsBasis(degree, primes[:12])
        target = primes[12]
        rows = [[q - 1] * degree for q in basis.moduli]
        got = new_limbs_matrix(
            rows,
            list(basis.moduli),
            basis.q_hat_inverses(),
            [basis.q_stars_mod(target)],
            [target],
        )
        assert got == [new_limb(rows, basis, target)]


class TestSubScaleMod:
    @settings(max_examples=30, deadline=None)
    @given(
        log_n=st.integers(2, 6),
        num_limbs=st.integers(1, 4),
        seed=st.integers(0, 2**32),
    )
    def test_matches_python_moddown_tail(self, log_n, num_limbs, seed):
        degree = 1 << log_n
        primes = find_ntt_primes(30, degree, num_limbs)
        a = _random_rows(primes, degree, seed)
        h = _random_rows(primes, degree, seed + 1)
        rng = random.Random(seed + 2)
        scales = [rng.randrange(1, q) for q in primes]
        got = sub_scale_mod(a, h, scales, primes)
        assert got == [
            [(x - y) * s % q for x, y in zip(ra, rh)]
            for ra, rh, s, q in zip(a, h, scales, primes)
        ]


class TestRingConversionDispatch:
    """ModUp/ModDown through the ring layer: fast path == oracle path."""

    def _eval_poly(self, degree, limbs, extra, seed=17):
        primes = find_ntt_primes(30, degree, limbs + extra)
        basis = RnsBasis(degree, primes[:limbs])
        rows = _random_rows(basis.moduli, degree, seed)
        poly = RnsPolynomial(basis, rows, Representation.COEFF).to_eval()
        return poly, primes[limbs:]

    def test_mod_up_matches_oracle(self):
        poly, extension = self._eval_poly(degree=32, limbs=3, extra=2)
        fast = mod_up(poly, extension)
        with kernels.oracle_only():
            slow = mod_up(poly.clone(), extension)
        assert fast == slow

    def test_mod_down_matches_oracle(self):
        poly, extension = self._eval_poly(degree=32, limbs=3, extra=2)
        raised = mod_up(poly, extension)
        fast = mod_down(raised, len(extension))
        with kernels.oracle_only():
            slow = mod_down(raised.clone(), len(extension))
        assert fast == slow

    def test_rescale_matches_oracle(self):
        poly, _ = self._eval_poly(degree=64, limbs=4, extra=0)
        fast = rescale(poly)
        with kernels.oracle_only():
            slow = rescale(poly.clone())
        assert fast == slow

    def test_mixed_moduli_fall_back_per_step(self):
        # Source limbs fit the fast path but the extension does not: the
        # conversion must still be exact (each step gates independently).
        degree = 32
        small = find_ntt_primes(30, degree, 2)
        big = find_ntt_primes(40, degree, 1)
        basis = RnsBasis(degree, small)
        rows = _random_rows(basis.moduli, degree, seed=23)
        poly = RnsPolynomial(basis, rows, Representation.COEFF).to_eval()
        fast = mod_up(poly, big)
        with kernels.oracle_only():
            slow = mod_up(poly.clone(), big)
        assert fast == slow
