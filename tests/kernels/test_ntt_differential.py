"""Differential contract: BatchNttKernel is bit-exact vs the oracle.

The kernels reimplement the negacyclic NTT with a very different
algorithm (radix-4 lazy-reduction Stockham vs the oracle's canonical
radix-2 Cooley-Tukey), so these tests pin the *whole output*, not a
tolerance: every row must equal the pure-Python
:class:`repro.numth.ntt.NttContext` result exactly, across ring degrees
up to ``2**15`` and for limb moduli up to the largest NTT prime below
``2**30``.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import kernels
from repro.kernels import BatchNttKernel, FAST_MODULUS_BOUND
from repro.numth import NttContext, find_ntt_primes
from repro.ring import Representation, RnsBasis, RnsPolynomial


def _random_rows(primes, degree, seed):
    rng = random.Random(seed)
    return [[rng.randrange(q) for _ in range(degree)] for q in primes]


class TestForwardInverseParity:
    # 2**15 with 3 limbs keeps the pure-Python reference affordable while
    # still exercising every radix-4 stage count parity (odd and even).
    @pytest.mark.parametrize("log_n", range(4, 16))
    def test_bit_exact_across_sizes(self, log_n):
        degree = 1 << log_n
        primes = find_ntt_primes(30, degree, 3)
        contexts = [NttContext(degree, q) for q in primes]
        kernel = BatchNttKernel(degree, primes, contexts)
        rows = _random_rows(primes, degree, seed=log_n)

        fwd = kernel.forward(rows)
        assert fwd.tolist() == [
            ctx.forward(row) for ctx, row in zip(contexts, rows)
        ]
        back = kernel.inverse(fwd)
        assert back.tolist() == rows

    def test_largest_prime_below_bound(self):
        # The boundary moduli are where the lazy-reduction ranges are
        # tightest (4q just below 2**32).
        degree = 256
        primes = find_ntt_primes(30, degree, 4)
        assert max(primes) > FAST_MODULUS_BOUND - (1 << 16)
        contexts = [NttContext(degree, q) for q in primes]
        kernel = BatchNttKernel(degree, primes, contexts)
        # Worst-case rows: every residue at its maximum.
        rows = [[q - 1] * degree for q in primes]
        assert kernel.forward(rows).tolist() == [
            ctx.forward(row) for ctx, row in zip(contexts, rows)
        ]
        rows = _random_rows(primes, degree, seed=99)
        assert kernel.inverse(rows).tolist() == [
            ctx.inverse(row) for ctx, row in zip(contexts, rows)
        ]

    @settings(max_examples=25, deadline=None)
    @given(
        log_n=st.integers(1, 9),
        num_limbs=st.integers(1, 4),
        seed=st.integers(0, 2**32),
    )
    def test_random_transforms_match_oracle(self, log_n, num_limbs, seed):
        degree = 1 << log_n
        primes = find_ntt_primes(30, degree, num_limbs)
        contexts = [NttContext(degree, q) for q in primes]
        kernel = BatchNttKernel(degree, primes, contexts)
        rows = _random_rows(primes, degree, seed)
        assert kernel.forward(rows).tolist() == [
            ctx.forward(row) for ctx, row in zip(contexts, rows)
        ]
        assert kernel.inverse(rows).tolist() == [
            ctx.inverse(row) for ctx, row in zip(contexts, rows)
        ]

    def test_unreduced_and_negative_inputs_canonicalised(self):
        degree = 64
        primes = find_ntt_primes(30, degree, 2)
        kernel = BatchNttKernel(degree, primes)
        contexts = [NttContext(degree, q) for q in primes]
        rows = _random_rows(primes, degree, seed=5)
        dirty = [
            [v - q if j % 2 else v + q for j, v in enumerate(row)]
            for row, q in zip(rows, primes)
        ]
        assert kernel.forward(dirty).tolist() == [
            ctx.forward(row) for ctx, row in zip(contexts, rows)
        ]


class TestNegacyclicMultiply:
    @settings(max_examples=20, deadline=None)
    @given(
        log_n=st.integers(2, 8),
        num_limbs=st.integers(1, 3),
        seed=st.integers(0, 2**32),
    )
    def test_matches_oracle(self, log_n, num_limbs, seed):
        degree = 1 << log_n
        primes = find_ntt_primes(30, degree, num_limbs)
        contexts = [NttContext(degree, q) for q in primes]
        kernel = BatchNttKernel(degree, primes, contexts)
        a = _random_rows(primes, degree, seed)
        b = _random_rows(primes, degree, seed + 1)
        assert kernel.negacyclic_multiply(a, b).tolist() == [
            ctx.negacyclic_multiply(ra, rb)
            for ctx, ra, rb in zip(contexts, a, b)
        ]

    def test_wraps_negacyclically(self):
        # x^(n-1) * x = -1 mod (x^n + 1): the sign flip distinguishes the
        # negacyclic convolution from a plain cyclic one.
        degree = 16
        primes = find_ntt_primes(30, degree, 1)
        kernel = BatchNttKernel(degree, primes)
        a = [[0] * (degree - 1) + [1]]
        b = [[0, 1] + [0] * (degree - 2)]
        got = kernel.negacyclic_multiply(a, b).tolist()
        assert got == [[primes[0] - 1] + [0] * (degree - 1)]


class TestBatchedVsSingle:
    def test_batched_equals_per_limb_kernels(self):
        degree = 128
        primes = find_ntt_primes(30, degree, 5)
        batched = BatchNttKernel(degree, primes)
        rows = _random_rows(primes, degree, seed=11)
        fwd = batched.forward(rows)
        for i, q in enumerate(primes):
            single = BatchNttKernel(degree, [q])
            assert single.forward([rows[i]]).tolist() == [fwd[i].tolist()]
            assert (
                single.inverse([rows[i]]).tolist()
                == [batched.inverse(rows)[i].tolist()]
            )

    def test_rows_adapters_return_plain_ints(self):
        degree = 32
        primes = find_ntt_primes(30, degree, 2)
        kernel = BatchNttKernel(degree, primes)
        rows = _random_rows(primes, degree, seed=3)
        out = kernel.forward_rows(rows)
        assert isinstance(out, list)
        assert all(type(v) is int for v in out[0])
        assert kernel.inverse_rows(out) == rows


class TestValidation:
    def test_rejects_empty_moduli(self):
        with pytest.raises(ValueError):
            BatchNttKernel(16, [])

    def test_rejects_oversized_modulus(self):
        degree = 16
        big = find_ntt_primes(40, degree, 1)
        with pytest.raises(ValueError, match="fast-path bound"):
            BatchNttKernel(degree, big)

    def test_rejects_mismatched_contexts(self):
        degree = 16
        primes = find_ntt_primes(30, degree, 2)
        contexts = [NttContext(degree, q) for q in reversed(primes)]
        with pytest.raises(ValueError, match="contexts"):
            BatchNttKernel(degree, primes, contexts)

    def test_rejects_wrong_shape(self):
        degree = 16
        primes = find_ntt_primes(30, degree, 2)
        kernel = BatchNttKernel(degree, primes)
        with pytest.raises(ValueError, match="residue matrix"):
            kernel.forward([[0] * degree])


class TestRingDispatch:
    """The ring layer picks the fast path and stays bit-exact."""

    def _poly(self, degree=32, limbs=3, seed=7):
        basis = RnsBasis(degree, find_ntt_primes(30, degree, limbs))
        rows = _random_rows(basis.moduli, degree, seed)
        return RnsPolynomial(basis, rows, Representation.COEFF)

    def test_fast_kernel_gated_by_toggle(self):
        poly = self._poly()
        assert poly.basis.fast_kernel() is not None
        with kernels.oracle_only():
            assert poly.basis.fast_kernel() is None
        assert poly.basis.fast_kernel() is not None

    def test_fast_kernel_none_for_big_moduli(self):
        degree = 32
        basis = RnsBasis(degree, find_ntt_primes(40, degree, 2))
        assert basis.fast_kernel() is None

    def test_to_eval_matches_oracle_path(self):
        poly = self._poly()
        fast = poly.to_eval()
        with kernels.oracle_only():
            slow = poly.to_eval()
        assert fast == slow
        assert fast.to_coeff() == poly

    def test_kernel_cache_shared_across_equal_bases(self):
        poly = self._poly()
        other = RnsBasis(poly.basis.degree, poly.basis.moduli)
        assert poly.basis.fast_kernel() is other.fast_kernel()
