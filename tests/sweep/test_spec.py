"""SweepSpec/SweepAxis: canonical order, identity, chunking."""

import itertools
from dataclasses import dataclass

import pytest

from repro.params import BASELINE_JUNG, MAD_OPTIMAL
from repro.perf import MADConfig
from repro.sweep import SweepAxis, SweepSpec, value_key


@dataclass(frozen=True)
class Coord:
    x: int
    y: str


class TestValueKey:
    def test_primitives_pass_through(self):
        for value in (None, True, 3, 2.5, "abc"):
            assert value_key(value) == value

    def test_dataclass_becomes_name_and_fields(self):
        assert value_key(Coord(1, "a")) == ["Coord", {"x": 1, "y": "a"}]

    def test_real_domain_dataclasses(self):
        key = value_key(BASELINE_JUNG)
        assert key[0] == "CkksParams"
        assert key[1]["log_n"] == 17
        assert value_key(MADConfig.all())[0] == "MADConfig"

    def test_sequences_and_mappings_recurse(self):
        assert value_key((1, [2, Coord(3, "z")])) == [1, [2, ["Coord", {"x": 3, "y": "z"}]]]
        assert value_key({"b": 2, "a": 1}) == {"a": 1, "b": 2}

    def test_distinct_values_distinct_keys(self):
        assert value_key(BASELINE_JUNG) != value_key(MAD_OPTIMAL)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError, match="canonical key"):
            value_key({1, 2, 3})


class TestSweepAxis:
    def test_coerces_sequence_to_tuple(self):
        axis = SweepAxis("cache_mb", [1.0, 2.0])
        assert axis.values == (1.0, 2.0)

    def test_rejects_empty_values(self):
        with pytest.raises(ValueError, match="no values"):
            SweepAxis("cache_mb", ())

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            SweepAxis("", (1,))


def _spec(chunk_size=None):
    return SweepSpec(
        name="toy",
        evaluator="test.echo",
        axes=(
            SweepAxis("a", (1, 2, 3)),
            SweepAxis("b", ("x", "y")),
        ),
        context={"k": 7},
        chunk_size=chunk_size,
    )


class TestSweepSpec:
    def test_size_is_grid_product(self):
        assert _spec().size == 6

    def test_points_follow_serial_nesting_order(self):
        """Canonical order == itertools.product over axes in declaration
        order, last axis fastest — exactly a nested for loop."""
        spec = _spec()
        expected = [
            {"a": a, "b": b} for a, b in itertools.product((1, 2, 3), ("x", "y"))
        ]
        points = list(spec.points())
        assert [index for index, _ in points] == list(range(6))
        assert [point for _, point in points] == expected

    def test_point_key_uses_axis_order(self):
        spec = _spec()
        assert spec.point_key({"b": "y", "a": 2}) == {"a": 2, "b": "y"}

    def test_rejects_duplicate_axis_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec(
                name="dup",
                evaluator="test.echo",
                axes=(SweepAxis("a", (1,)), SweepAxis("a", (2,))),
            )

    def test_rejects_empty_axes(self):
        with pytest.raises(ValueError, match="at least one axis"):
            SweepSpec(name="none", evaluator="test.echo", axes=())

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            _spec(chunk_size=0)

    def test_fingerprint_is_stable(self):
        assert _spec().fingerprint() == _spec().fingerprint()
        assert len(_spec().fingerprint()) == 64

    def test_fingerprint_sees_every_identity_field(self):
        base = _spec().fingerprint()
        renamed = SweepSpec(
            name="other", evaluator="test.echo", axes=_spec().axes, context={"k": 7}
        )
        recontexted = SweepSpec(
            name="toy", evaluator="test.echo", axes=_spec().axes, context={"k": 8}
        )
        reordered = SweepSpec(
            name="toy", evaluator="test.echo", axes=tuple(reversed(_spec().axes)),
            context={"k": 7},
        )
        assert len({base, renamed.fingerprint(), recontexted.fingerprint(),
                    reordered.fingerprint()}) == 4

    def test_fingerprint_ignores_chunk_size(self):
        """Chunking is scheduling, not identity: resume must accept
        reports produced under a different chunk size."""
        assert _spec().fingerprint() == _spec(chunk_size=2).fingerprint()

    def test_chunks_partition_indices_in_order(self):
        spec = _spec(chunk_size=4)
        chunks = spec.chunks(list(range(6)), jobs=3)
        assert chunks == [[0, 1, 2, 3], [4, 5]]

    def test_resolved_chunk_size_deterministic(self):
        spec = _spec()
        assert spec.resolved_chunk_size(2) == spec.resolved_chunk_size(2)
        assert spec.resolved_chunk_size(1) >= 1
