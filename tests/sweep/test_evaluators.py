"""Built-in evaluators reproduce their serial surfaces bit-for-bit."""

import pytest

from repro.params import BASELINE_JUNG, CkksParams
from repro.perf import BootstrapModel, CacheModel, MADConfig
from repro.hardware import PRIOR_DESIGNS, mad_counterpart
from repro.hardware.runtime import estimate_runtime
from repro.sweep import Memo, SweepAxis, SweepSpec, build_preset, run_sweep
from repro.sweep.evaluators import memoized_bootstrap_cost


class TestSearchCandidate:
    def test_matches_direct_evaluation(self):
        from repro.search.throughput import bootstrap_throughput

        design = mad_counterpart(PRIOR_DESIGNS["GPU [Jung et al.]"])
        spec = SweepSpec(
            name="one",
            evaluator="search.candidate",
            axes=(SweepAxis("params", (BASELINE_JUNG,)),),
            context={
                "design": design,
                "config": MADConfig.all(),
                "enforce_cache": False,
            },
        )
        result = run_sweep(spec, jobs=1).values[0]
        cost = BootstrapModel(BASELINE_JUNG, MADConfig.all()).total_cost()
        runtime = estimate_runtime(cost, design)
        assert result.cost == cost
        assert result.runtime == runtime
        assert result.throughput == bootstrap_throughput(
            BASELINE_JUNG.slots,
            BASELINE_JUNG.log_q1,
            BASELINE_JUNG.bit_precision,
            runtime.seconds,
        )

    def test_enforce_cache_uses_design_capacity(self):
        design = mad_counterpart(PRIOR_DESIGNS["GPU [Jung et al.]"])
        spec = SweepSpec(
            name="one",
            evaluator="search.candidate",
            axes=(SweepAxis("params", (BASELINE_JUNG,)),),
            context={
                "design": design,
                "config": MADConfig.all(),
                "enforce_cache": True,
            },
        )
        result = run_sweep(spec, jobs=1).values[0]
        expected = BootstrapModel(
            BASELINE_JUNG, MADConfig.all(), design.cache
        ).total_cost()
        assert result.cost == expected


class TestBootstrapCost:
    def test_matches_direct_model(self):
        spec = SweepSpec(
            name="cache-ladder",
            evaluator="bootstrap.cost",
            axes=(SweepAxis("cache_mb", (2.0, 32.0)),),
            context={
                "params": BASELINE_JUNG,
                "config": MADConfig.caching_only(),
            },
        )
        rows = run_sweep(spec, jobs=1).values
        for row, mb in zip(rows, (2.0, 32.0)):
            cost = BootstrapModel(
                BASELINE_JUNG, MADConfig.caching_only(), CacheModel.from_mb(mb)
            ).total_cost()
            assert row["cache_mb"] == mb
            assert row["traffic_total"] == cost.traffic.total
            assert row["ops_total"] == cost.ops.total
            assert row["dram_gb"] == cost.gigabytes()

    def test_flag_axis_toggles_single_optimizations(self):
        spec = SweepSpec(
            name="flags",
            evaluator="bootstrap.cost",
            axes=(SweepAxis("flag", ("baseline", "cache_o1")),),
            context={"params": BASELINE_JUNG, "config": MADConfig.none()},
        )
        base_row, o1_row = run_sweep(spec, jobs=1).values
        assert base_row["traffic_total"] == (
            BootstrapModel(BASELINE_JUNG, MADConfig.none()).total_cost().traffic.total
        )
        assert o1_row["traffic_total"] == (
            BootstrapModel(BASELINE_JUNG, MADConfig(cache_o1=True))
            .total_cost()
            .traffic.total
        )
        assert o1_row["traffic_total"] < base_row["traffic_total"]

    def test_missing_params_rejected(self):
        spec = SweepSpec(
            name="broken",
            evaluator="bootstrap.cost",
            axes=(SweepAxis("cache_mb", (2.0,)),),
            context={"config": MADConfig.none()},
        )
        with pytest.raises(ValueError, match="params and config"):
            run_sweep(spec, jobs=1)

    def test_memoized_cost_reused(self):
        memo = Memo()
        first = memoized_bootstrap_cost(
            BASELINE_JUNG, MADConfig.none(), None, memo
        )
        second = memoized_bootstrap_cost(
            BASELINE_JUNG, MADConfig.none(), None, memo
        )
        assert first is second
        assert memo.stats() == (1, 1)


class TestFig6Bar:
    def test_grid_matches_serial_series(self):
        from repro.apps import helr_training
        from repro.report.figures import generate_fig6_grid, generate_fig6_series

        design = PRIOR_DESIGNS["BTS"]
        sizes = [32.0, 256.0]
        serial = generate_fig6_series(
            design, lambda p: helr_training(p, iterations=30), sizes
        )
        grid = generate_fig6_grid("lr", [design], sizes)[design.name]
        assert grid == serial

    def test_unknown_workload_rejected(self):
        from repro.report.figures import generate_fig6_grid

        with pytest.raises(ValueError, match="workload"):
            generate_fig6_grid("svm", [PRIOR_DESIGNS["BTS"]], [32.0])


class TestPresets:
    def test_known_presets_build(self):
        for name in ("table5", "ablation-cache", "memsim-ladder"):
            spec = build_preset(name, quick=True)
            assert spec.size > 0

    def test_quick_is_smaller(self):
        assert (
            build_preset("table5", quick=True).size
            < build_preset("table5").size
        )

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError, match="unknown sweep"):
            build_preset("nope")

    def test_ablation_preset_matches_committed_benchmark(self):
        from repro.sweep.presets import ABLATION_CACHE_SIZES

        spec = build_preset("ablation-cache")
        assert spec.axes[0].values == tuple(float(s) for s in ABLATION_CACHE_SIZES)
