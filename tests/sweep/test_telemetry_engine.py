"""Cross-process telemetry through the sweep engine.

The acceptance bar: a ``--jobs N`` sweep's merged span tree and metrics
are **bit-identical** to the serial run after
:func:`repro.obs.telemetry.strip_volatile` — worker snapshots are merged
in canonical chunk order, memoized computes are observationally
transparent, and per-point spans carry host resource attribution.
"""

import json
import os

from repro.obs import state as obs
from repro.obs.events import (
    CHUNK_COMPLETE,
    RUN_START,
    SWEEP_END,
    SWEEP_START,
    EventLog,
    provenance,
    read_events,
)
from repro.obs.export import build_run_report
from repro.obs.telemetry import strip_volatile
from repro.perf.events import CostReport, MemTraffic, OpCount
from repro.sweep import SweepAxis, SweepSpec, register_evaluator, run_sweep


# Module-level so forked pool workers inherit the registrations.
def _traced(point, context, memo):
    with obs.span("model"):
        obs.record_cost(
            CostReport(
                OpCount(mults=point["a"] * 100, adds=point["a"]),
                MemTraffic(ct_read=point["a"] * 64),
            )
        )
        obs.count("model.evals")
        obs.observe("model.a", point["a"])
    return {"a": point["a"], "b": point["b"]}


def _memoed(point, context, memo):
    # The shared sub-result is computed under obs.suppressed() by Memo,
    # so which worker misses first cannot change the merged trace.
    base = memo.get_or_compute(("base", point["a"]), lambda: _base(point["a"]))
    with obs.span("combine"):
        obs.count("combine.calls")
    return {"value": base, "b": point["b"]}


def _base(a):
    with obs.span("base"):
        obs.count("base.computes")
    return a * 10


register_evaluator("test.traced", _traced)
register_evaluator("test.memoed", _memoed)


def _spec(evaluator="test.traced", chunk_size=2):
    return SweepSpec(
        name="telemetry-toy",
        evaluator=evaluator,
        axes=(SweepAxis("a", (1, 2, 3, 4)), SweepAxis("b", ("x", "y"))),
        context={},
        chunk_size=chunk_size,
    )


def _captured_report(spec, jobs):
    with obs.capture() as (tracer, registry):
        outcome = run_sweep(spec, jobs=jobs)
    report = build_run_report(
        tracer, registry, command="test", workload=f"sweep:{spec.name}"
    )
    return outcome, report


def _canon(report):
    return json.dumps(strip_volatile(report), sort_keys=True, default=str)


class TestCrossProcessParity:
    def test_jobs2_trace_bit_identical_to_serial(self):
        _, serial = _captured_report(_spec(), jobs=1)
        _, parallel = _captured_report(_spec(), jobs=2)
        assert _canon(serial) == _canon(parallel)

    def test_jobs3_and_chunk_size_invariance(self):
        _, baseline = _captured_report(_spec(chunk_size=2), jobs=1)
        _, other = _captured_report(_spec(chunk_size=3), jobs=3)
        assert _canon(baseline) == _canon(other)

    def test_memo_hit_miss_pattern_invisible_in_trace(self):
        # Serial: one miss per distinct "a". jobs=2: each worker misses
        # independently. The traces must still match bit-for-bit.
        _, serial = _captured_report(_spec(evaluator="test.memoed"), jobs=1)
        _, parallel = _captured_report(_spec(evaluator="test.memoed"), jobs=2)
        assert _canon(serial) == _canon(parallel)

    def test_results_unchanged_by_capture(self):
        bare = run_sweep(_spec(), jobs=2)
        captured, _ = _captured_report(_spec(), jobs=2)
        assert captured.rows == bare.rows


class TestSpanTree:
    def test_per_point_spans_with_resource_attribution(self):
        with obs.capture() as (tracer, _registry):
            run_sweep(_spec(), jobs=2)
        (run,) = tracer.roots
        assert run.name == "sweep:run"
        points = [s for s in run.walk() if s.name == "sweep:point"]
        assert [p.meta["index"] for p in points] == list(range(8))
        for point in points:
            resource = point.meta["resource"]
            assert resource["rss_peak_bytes"] > 0
            assert resource["cpu_seconds"] >= 0.0
        models = [s for s in run.walk() if s.name == "model"]
        assert len(models) == 8

    def test_span_costs_survive_worker_boundary_exactly(self):
        with obs.capture() as (tracer, _registry):
            run_sweep(_spec(), jobs=2)
        total = tracer.total_cost()
        # 2 points per "a" value: sum over a in 1..4 of 2 * a * 100.
        assert total.ops.mults == 2 * (1 + 2 + 3 + 4) * 100
        assert total.traffic.ct_read == 2 * (1 + 2 + 3 + 4) * 64

    def test_metrics_merged_from_workers(self):
        with obs.capture() as (_tracer, registry):
            run_sweep(_spec(), jobs=2)
        assert registry.counter("model.evals").value == 8
        hist = registry.histogram("model.a")
        assert hist.count == 8
        assert hist.min == 1 and hist.max == 4

    def test_no_telemetry_when_disabled(self):
        outcome = run_sweep(_spec(), jobs=2)
        assert outcome.rows  # sweep ran
        assert not obs.tracing_enabled()
        assert not obs.metrics_enabled()


class TestWorkerSummaries:
    def test_serial_summary_is_this_process(self):
        outcome = run_sweep(_spec(), jobs=1)
        (worker,) = outcome.workers
        assert worker["pid"] == os.getpid()
        assert worker["chunks"] == outcome.chunks
        assert worker["peak_rss_bytes"] >= 0

    def test_parallel_summary_covers_all_chunks(self):
        outcome = run_sweep(_spec(), jobs=2)
        assert 1 <= len(outcome.workers) <= 2
        assert sum(w["chunks"] for w in outcome.workers) == outcome.chunks
        assert all(w["pid"] != os.getpid() for w in outcome.workers)


class TestEventStream:
    def test_sweep_emits_validated_stream(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        spec = _spec()
        with EventLog(path) as log:
            log.start("sweep test", provenance_block=provenance())
            outcome = run_sweep(spec, jobs=2, events=log)
        events = read_events(path)  # strict: validates the whole stream
        kinds = [e["type"] for e in events]
        assert kinds[0] == RUN_START
        assert kinds[1] == SWEEP_START
        assert kinds[-1] == SWEEP_END
        chunk_events = [e for e in events if e["type"] == CHUNK_COMPLETE]
        assert len(chunk_events) == outcome.chunks
        assert chunk_events[-1]["data"]["points_done"] == spec.size
        end = events[-1]["data"]
        assert end["points"] == spec.size
        assert end["workers"] == outcome.workers

    def test_progress_is_monotone(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path) as log:
            log.start("sweep test", provenance_block=provenance())
            run_sweep(_spec(), jobs=2, events=log)
        done = [
            e["data"]["points_done"]
            for e in read_events(path)
            if e["type"] == CHUNK_COMPLETE
        ]
        assert done == sorted(done)
