"""Engine semantics: canonical merge, parallel parity, memo, resume."""

import pytest

from repro.obs import state as obs
from repro.sweep import (
    Memo,
    SweepAxis,
    SweepError,
    SweepSpec,
    build_sweep_report,
    register_evaluator,
    run_sweep,
)


# Module-level so forked pool workers inherit the registration.
def _echo(point, context, memo):
    return {"a": point["a"], "b": point["b"], "scale": context.get("scale", 1)}


def _product(point, context, memo):
    # Shares one memoized sub-evaluation per distinct "a" across points.
    base = memo.get_or_compute(("base", point["a"]), lambda: point["a"] * 10)
    return {"value": base + context["offset"], "b": point["b"]}


def _boom(point, context, memo):
    if point["a"] == 2:
        raise RuntimeError("kaboom at a=2")
    return {"a": point["a"]}


register_evaluator("test.echo", _echo)
register_evaluator("test.product", _product)
register_evaluator("test.boom", _boom)


def _spec(evaluator="test.echo", context=None, chunk_size=None):
    return SweepSpec(
        name="toy",
        evaluator=evaluator,
        axes=(SweepAxis("a", (1, 2, 3)), SweepAxis("b", ("x", "y"))),
        context=context if context is not None else {"scale": 1},
        chunk_size=chunk_size,
    )


class TestSerialEngine:
    def test_values_in_canonical_order(self):
        outcome = run_sweep(_spec(), jobs=1)
        assert [v["a"] for v in outcome.values] == [1, 1, 2, 2, 3, 3]
        assert [v["b"] for v in outcome.values] == ["x", "y"] * 3
        assert outcome.reused == 0 and outcome.evaluated == 6

    def test_rows_default_to_dict_values(self):
        outcome = run_sweep(_spec(), jobs=1)
        assert outcome.rows == outcome.values

    def test_chunking_never_changes_output(self):
        by_chunk = {
            size: run_sweep(_spec(chunk_size=size), jobs=1).values
            for size in (1, 2, 5, 64)
        }
        reference = run_sweep(_spec(), jobs=1).values
        for values in by_chunk.values():
            assert values == reference

    def test_memo_shared_across_whole_run(self):
        outcome = run_sweep(
            _spec("test.product", {"offset": 5}, chunk_size=1), jobs=1
        )
        # 3 distinct "a" values over 6 points: 3 misses, 3 hits — across
        # chunk boundaries, because jobs=1 keeps one memo for the run.
        assert (outcome.memo_hits, outcome.memo_misses) == (3, 3)
        assert outcome.memo_hit_rate == pytest.approx(0.5)

    def test_evaluator_error_propagates(self):
        with pytest.raises(RuntimeError, match="kaboom"):
            run_sweep(_spec("test.boom", {}), jobs=1)

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(_spec(), jobs=0)

    def test_dispatch_metrics_published(self):
        with obs.capture() as (tracer, registry):
            run_sweep(_spec(), jobs=1)
        counters = registry.counters()
        assert counters["sweep.points"] == 6
        assert counters["sweep.chunks.scheduled"] >= 1
        assert (
            counters["sweep.chunks.completed"]
            == counters["sweep.chunks.scheduled"]
        )
        spans = [span.name for span in tracer.spans()]
        assert "sweep:run" in spans


class TestParallelEngine:
    def test_parallel_output_bit_identical(self):
        serial = run_sweep(_spec(), jobs=1)
        parallel = run_sweep(_spec(), jobs=2)
        assert parallel.values == serial.values
        assert parallel.rows == serial.rows
        assert parallel.point_keys == serial.point_keys
        assert parallel.jobs == 2

    def test_parallel_chunk_failure_is_wrapped(self):
        with pytest.raises(SweepError, match="canonical indices"):
            run_sweep(_spec("test.boom", {}, chunk_size=1), jobs=2)

    def test_worker_utilisation_bounded(self):
        outcome = run_sweep(_spec(), jobs=2)
        assert 0.0 <= outcome.worker_utilisation <= 1.0


class TestResume:
    def test_full_resume_reuses_everything(self):
        report = build_sweep_report(run_sweep(_spec(), jobs=1))
        resumed = run_sweep(_spec(), jobs=1, resume=report)
        assert resumed.reused == 6 and resumed.evaluated == 0
        # Resumed values are the stored JSON rows.
        assert resumed.values == [entry["row"] for entry in report["points"]]

    def test_partial_resume_evaluates_only_pending(self):
        report = build_sweep_report(run_sweep(_spec(), jobs=1))
        report["points"] = report["points"][:4]
        resumed = run_sweep(_spec(), jobs=1, resume=report)
        assert resumed.reused == 4 and resumed.evaluated == 2
        assert resumed.rows == run_sweep(_spec(), jobs=1).rows

    def test_fingerprint_mismatch_rejected(self):
        report = build_sweep_report(run_sweep(_spec(), jobs=1))
        other = SweepSpec(
            name="toy",
            evaluator="test.echo",
            axes=_spec().axes,
            context={"scale": 2},
        )
        with pytest.raises(SweepError, match="fingerprint mismatch"):
            run_sweep(other, jobs=1, resume=report)

    def test_out_of_range_indices_ignored(self):
        report = build_sweep_report(run_sweep(_spec(), jobs=1))
        report["points"].append(
            {"index": 99, "key": {"a": 9, "b": "z"}, "row": {"a": 9}}
        )
        resumed = run_sweep(_spec(), jobs=1, resume=report)
        assert resumed.reused == 6
