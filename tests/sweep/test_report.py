"""repro.sweep/v1 reports: round trip, validator rejections."""

import copy

import pytest

from repro.sweep import (
    SCHEMA_ID,
    SweepAxis,
    SweepSpec,
    build_sweep_report,
    load_sweep_report,
    run_sweep,
    validate_sweep_report,
    write_sweep_report,
)

# Registered by tests/sweep/test_engine.py at import time; importing the
# module keeps the registration in one place.
from tests.sweep import test_engine as _engine  # noqa: F401


@pytest.fixture(scope="module")
def outcome():
    spec = SweepSpec(
        name="toy-report",
        evaluator="test.echo",
        axes=(SweepAxis("a", (1, 2)), SweepAxis("b", ("x",))),
        context={"scale": 3},
    )
    return run_sweep(spec, jobs=1)


@pytest.fixture()
def report(outcome):
    return copy.deepcopy(build_sweep_report(outcome))


class TestBuildReport:
    def test_schema_and_identity(self, outcome, report):
        assert report["schema"] == SCHEMA_ID
        assert report["sweep"] == "toy-report"
        assert report["evaluator"] == "test.echo"
        assert report["fingerprint"] == outcome.spec.fingerprint()
        assert [axis["name"] for axis in report["axes"]] == ["a", "b"]

    def test_one_point_per_canonical_index(self, outcome, report):
        assert [entry["index"] for entry in report["points"]] == [0, 1]
        assert [entry["row"] for entry in report["points"]] == outcome.rows
        assert [entry["key"] for entry in report["points"]] == outcome.point_keys

    def test_write_load_round_trip(self, outcome, tmp_path):
        path = tmp_path / "sweep_report.json"
        written = write_sweep_report(outcome, str(path))
        assert load_sweep_report(str(path)) == written

    def test_load_missing_returns_none(self, tmp_path):
        assert load_sweep_report(str(tmp_path / "absent.json")) is None


class TestValidator:
    def test_valid_report_passes(self, report):
        validate_sweep_report(report)

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda r: r.update(schema="other/v9"), "schema id"),
            (lambda r: r.pop("points"), "missing required key"),
            (lambda r: r.update(fingerprint="zz"), "64-hex"),
            (lambda r: r.update(jobs=0), "jobs"),
            (lambda r: r.update(memo={"hits": -1, "misses": 0}), "memo.hits"),
            (lambda r: r.update(worker_utilisation=1.5), "exceeds 1"),
            (lambda r: r.update(complete="yes"), "boolean"),
            (lambda r: r["points"][0].pop("row"), "missing 'row'"),
            (
                lambda r: r["points"].__setitem__(1, dict(r["points"][0])),
                "duplicated",
            ),
        ],
    )
    def test_structural_rejections(self, report, mutate, match):
        mutate(report)
        with pytest.raises(ValueError, match=match):
            validate_sweep_report(report)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="not an object"):
            validate_sweep_report([])
