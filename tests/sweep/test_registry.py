"""Evaluator registry: lazy built-ins, idempotent registration."""

import pytest

from repro.sweep import get_evaluator, register_evaluator
from repro.sweep.registry import registered_evaluators


def _fn(point, context, memo):
    return {"ok": True}


class TestRegistry:
    def test_builtins_resolve_lazily(self):
        for name in (
            "search.candidate",
            "bootstrap.cost",
            "fig6.bar",
            "memsim.primitive",
        ):
            assert get_evaluator(name).name == name

    def test_unknown_evaluator_lists_known(self):
        with pytest.raises(KeyError, match="search.candidate"):
            get_evaluator("no.such.evaluator")

    def test_reregistration_of_same_fn_is_idempotent(self):
        register_evaluator("test.registry-fn", _fn)
        register_evaluator("test.registry-fn", _fn)  # no error

    def test_conflicting_registration_rejected(self):
        register_evaluator("test.registry-conflict", _fn)
        with pytest.raises(ValueError, match="already registered"):
            register_evaluator("test.registry-conflict", lambda p, c, m: None)

    def test_default_row_wraps_non_dict_values(self):
        evaluator = register_evaluator("test.registry-row", _fn)
        assert evaluator.row({"a": 1}, {}) == {"a": 1}
        assert evaluator.row(42, {}) == {"value": 42}

    def test_snapshot_contains_builtins(self):
        names = set(registered_evaluators())
        assert {"search.candidate", "bootstrap.cost"} <= names
