import pytest

from repro.hardware import ARK, BTS, F1, GPU_JUNG
from repro.report.figures import _unpacked_penalty, generate_fig6_series
from repro.apps import helr_training


class TestUnpackedPenalty:
    def test_packed_designs_have_no_penalty(self):
        for design in (GPU_JUNG, BTS, ARK):
            assert _unpacked_penalty(design) == 1

    def test_f1_pays_per_slot(self):
        # F1 bootstraps one element at a time; refreshing its n=2^13 packed
        # working set costs 2^13 invocations.
        assert _unpacked_penalty(F1) == 2**13


class TestOriginalDesignModeling:
    def test_original_uses_its_own_cache_capabilities(self):
        """A 512 MB design's 'original' bar must benefit from caching —
        otherwise the comparison against MAD is a strawman."""
        bars_big = generate_fig6_series(
            BTS, lambda p: helr_training(p, iterations=6), cache_sizes_mb=(32,)
        )
        small_bts = BTS.with_memory(1.5)
        bars_small = generate_fig6_series(
            small_bts, lambda p: helr_training(p, iterations=6), cache_sizes_mb=(32,)
        )
        # Same workload and bandwidth: the 512 MB original must be faster
        # than a 1.5 MB original.
        assert bars_big[0].seconds < bars_small[0].seconds

    def test_mad_bars_use_requested_cache_sizes(self):
        bars = generate_fig6_series(
            GPU_JUNG,
            lambda p: helr_training(p, iterations=6),
            cache_sizes_mb=(6, 32),
        )
        assert len(bars) == 3
        assert "MAD-6" in bars[1].label
        assert "MAD-32" in bars[2].label

    def test_speedups_relative_to_first_bar(self):
        bars = generate_fig6_series(
            GPU_JUNG,
            lambda p: helr_training(p, iterations=6),
            cache_sizes_mb=(32,),
        )
        assert bars[0].speedup_vs_original == 1.0
        assert bars[1].speedup_vs_original == pytest.approx(
            bars[0].seconds / bars[1].seconds
        )
