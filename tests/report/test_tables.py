import pytest

from repro.params import BASELINE_JUNG, MAD_OPTIMAL
from repro.perf import MADConfig
from repro.report import (
    generate_table4,
    generate_table5,
    generate_table6,
    render_table4,
    render_table5,
    render_table6,
)


class TestTable4:
    @pytest.fixture(scope="class")
    def rows(self):
        return generate_table4()

    def test_all_operations_present(self, rows):
        names = [r.operation for r in rows]
        for expected in (
            "PtAdd",
            "Add",
            "PtMult",
            "Decomp",
            "ModUp",
            "KSKInnerProd",
            "ModDown",
            "Mult",
            "Automorph",
            "Rotate",
            "Conjugate",
            "Bootstrap",
        ):
            assert expected in names

    def test_all_primitives_have_low_ai(self, rows):
        """The table's headline: every primitive has AI < 2 op/byte."""
        for row in rows:
            assert row.arithmetic_intensity < 2.0

    def test_bootstrap_row_dominates(self, rows):
        by_name = {r.operation: r for r in rows}
        assert by_name["Bootstrap"].giga_ops > 50 * by_name["Mult"].giga_ops

    def test_render_contains_rows(self, rows):
        text = render_table4(rows)
        assert "Rotate" in text and "Bootstrap" in text

    def test_optimized_table_has_less_traffic(self, rows):
        optimized = generate_table4(config=MADConfig.caching_only())
        base_by_name = {r.operation: r for r in rows}
        for row in optimized:
            assert row.dram_gb <= base_by_name[row.operation].dram_gb + 1e-9


class TestTable5:
    @pytest.fixture(scope="class")
    def table(self):
        from repro.search import enumerate_parameter_space

        candidates = list(
            enumerate_parameter_space(
                log_q_choices=(50, 54),
                max_limbs_choices=(35, 40),
                dnum_choices=(2, 3),
                fft_iter_choices=(3, 6),
            )
        )
        return generate_table5(candidates=candidates)

    def test_baseline_entry(self, table):
        assert table["baseline"] == BASELINE_JUNG
        assert table["paper_optimal"] == MAD_OPTIMAL

    def test_search_beats_baseline_throughput(self, table):
        assert table["searched"].params != BASELINE_JUNG

    def test_render(self, table):
        text = render_table5(table)
        assert "Baseline" in text and "Search optimal" in text


class TestTable6:
    @pytest.fixture(scope="class")
    def rows(self):
        return generate_table6()

    def test_ten_rows_five_pairs(self, rows):
        assert len(rows) == 10
        assert sum(1 for r in rows if r.source == "reported") == 5
        assert sum(1 for r in rows if r.source == "modeled") == 5

    def test_mad_rows_use_32_mb(self, rows):
        for row in rows:
            if row.source == "modeled":
                assert row.on_chip_mb == 32

    def test_mad_beats_gpu(self, rows):
        by_name = {r.design: r for r in rows}
        gpu = by_name["GPU [Jung et al.]"]
        mad = by_name["GPU [Jung et al.]+MAD-32"]
        assert mad.throughput > 3 * gpu.throughput

    def test_mad_beats_f1_by_orders_of_magnitude(self, rows):
        by_name = {r.design: r for r in rows}
        assert by_name["F1+MAD-32"].throughput > 1000 * by_name["F1"].throughput

    def test_large_memory_asics_lose_throughput_with_small_mad(self, rows):
        """BTS/ARK/CraterLake at 32 MB trade throughput for 8-16x less
        on-chip memory (the paper's cost argument)."""
        by_name = {r.design: r for r in rows}
        for name in ("BTS", "ARK", "CraterLake"):
            assert by_name[f"{name}+MAD-32"].throughput < by_name[name].throughput

    def test_reported_throughputs_match_paper(self, rows):
        by_name = {r.design: r for r in rows}
        assert by_name["BTS"].throughput == pytest.approx(2667, rel=0.05)
        assert by_name["ARK"].throughput == pytest.approx(6896, rel=0.05)
        assert by_name["CraterLake"].throughput == pytest.approx(10465, rel=0.05)
        assert by_name["GPU [Jung et al.]"].throughput == pytest.approx(409, rel=0.05)

    def test_render(self, rows):
        text = render_table6(rows)
        assert "CraterLake" in text and "MAD-32" in text
