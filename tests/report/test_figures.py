import pytest

from repro.hardware import BTS, CRATERLAKE, GPU_JUNG
from repro.report import (
    generate_fig1,
    generate_fig2,
    generate_fig3,
    generate_fig6_lr,
    generate_fig6_resnet,
    render_series,
)


class TestFig1:
    def test_o1_reduces_transfers(self):
        data = generate_fig1()
        assert data["cached_reads"] < data["naive_reads"]
        assert data["cached_writes"] < data["naive_writes"]

    def test_savings_exceed_paper_example(self):
        # Paper: O(1) caching avoids >= 124 MB per Rotate at 35 limbs.
        data = generate_fig1()
        assert data["saved_mb"] >= 124


class TestFig2:
    @pytest.fixture(scope="class")
    def points(self):
        return generate_fig2()

    def test_five_ladder_points(self, points):
        assert len(points) == 5
        assert points[0].label == "Baseline"

    def test_monotone_dram_reduction(self, points):
        values = [p.dram_gb for p in points]
        assert values == sorted(values, reverse=True)

    def test_key_reads_constant(self, points):
        first = points[0].key_read_gb
        for p in points:
            assert p.key_read_gb == pytest.approx(first)

    def test_final_reduction_in_paper_band(self, points):
        assert 0.35 <= points[-1].reduction_vs_baseline <= 0.60


class TestFig3:
    @pytest.fixture(scope="class")
    def points(self):
        return generate_fig3()

    def test_four_ladder_points(self, points):
        assert len(points) == 4

    def test_merge_and_hoist_reduce_ops(self, points):
        ops = [p.giga_ops for p in points]
        assert ops[1] < ops[0]  # ModDown merge
        assert ops[2] < ops[1]  # ModDown hoisting

    def test_compression_halves_key_reads(self, points):
        assert points[3].key_read_gb == pytest.approx(
            points[2].key_read_gb / 2
        )

    def test_hoisting_raises_key_reads_at_baseline_params(self):
        # The +25% key-read trade shows up with large DFT stage matrices
        # (41 diagonals at fftIter=3); the MAD-optimal set's 7-diagonal
        # stages leave the BSGS split unchanged.
        from repro.params import BASELINE_JUNG

        points = generate_fig3(BASELINE_JUNG)
        assert points[2].key_read_gb > points[1].key_read_gb


class TestFig6:
    def test_gpu_lr_series(self):
        bars = generate_fig6_lr(GPU_JUNG, cache_sizes_mb=(6, 32))
        assert len(bars) == 3
        original, mad6, mad32 = bars
        assert original.speedup_vs_original == 1.0
        # Paper: GPU+MAD-6 ~3.5x, GPU+MAD-32 ~17x; our model must at least
        # show substantial, cache-monotone speedups.
        assert mad6.speedup_vs_original > 1.2
        assert mad32.speedup_vs_original >= mad6.speedup_vs_original

    def test_craterlake_resnet_series(self):
        bars = generate_fig6_resnet(CRATERLAKE, cache_sizes_mb=(32, 256))
        assert bars[1].speedup_vs_original > 1.0

    def test_bts_resnet_improves(self):
        bars = generate_fig6_resnet(BTS, cache_sizes_mb=(32, 256, 512))
        assert all(b.speedup_vs_original > 1.0 for b in bars[1:])

    def test_render_series(self):
        bars = generate_fig6_lr(GPU_JUNG, cache_sizes_mb=(32,))
        text = render_series("LR training", bars)
        assert "LR training" in text
