import numpy as np
import pytest

from repro.ckks.encoding import Encoder
from repro.ckks.specialfft import SpecialFft, leaf_permutation
from repro.ckks.linear import matrix_diagonals


@pytest.fixture(scope="module", params=[8, 16, 32])
def fft(request):
    return SpecialFft(Encoder(request.param, 2.0**20))


class TestLeafPermutation:
    def test_degree_eight(self):
        # N=8: split [0..7] -> evens [0,2,4,6] -> [0,4],[2,6]; odds -> ...
        assert leaf_permutation(4) == [0, 2, 1, 3]

    def test_is_half_length(self):
        assert len(leaf_permutation(8)) == 8

    def test_pairs_cover_all_coefficients(self, fft):
        n = fft.slots
        covered = set(fft.sigma) | {s + n for s in fft.sigma}
        assert covered == set(range(2 * n))


class TestFactorization:
    def test_staged_product_matches_encoder(self, fft):
        rng = np.random.default_rng(fft.slots)
        c = rng.normal(size=2 * fft.slots)
        state = fft.leaf_state(c)
        for matrix in fft.level_matrices:
            state = matrix @ state
        want = fft.encoder.project(c)
        assert np.max(np.abs(state - want)) < 1e-10

    def test_full_products_are_inverses(self, fft):
        identity = fft.coeff_to_slot_full() @ fft.slot_to_coeff_full()
        assert np.max(np.abs(identity - np.eye(fft.slots))) < 1e-10

    def test_leaf_state_round_trip(self, fft):
        rng = np.random.default_rng(1)
        c = rng.normal(size=2 * fft.slots)
        assert np.allclose(fft.unpack_leaf_state(fft.leaf_state(c)), c)

    def test_level_count(self, fft):
        import math

        assert len(fft.level_matrices) == int(math.log2(fft.slots))


class TestDiagonalSparsity:
    def test_each_level_has_three_diagonals(self, fft):
        for t, matrix in enumerate(fft.level_matrices):
            diagonals = matrix_diagonals(matrix)
            n = fft.slots
            assert set(diagonals) <= {0, 2**t % n, (n - 2**t) % n}
            assert 0 in diagonals

    def test_grouping_reduces_stage_count(self, fft):
        if fft.levels < 2:
            pytest.skip("too few levels to group")
        stages = fft.grouped_stages(2)
        assert len(stages) == 2
        # Each stage is sparser than the dense full transform.
        full_diagonals = len(matrix_diagonals(fft.slot_to_coeff_full()))
        for stage in stages:
            assert len(matrix_diagonals(stage)) <= full_diagonals

    def test_single_group_equals_full(self, fft):
        (stage,) = fft.grouped_stages(1)
        assert np.allclose(stage, fft.slot_to_coeff_full())

    def test_inverse_stages_compose_to_inverse(self, fft):
        if fft.levels < 2:
            pytest.skip("too few levels to group")
        stages = fft.grouped_stages(2, inverse=True)
        product = np.eye(fft.slots, dtype=np.complex128)
        for stage in stages:
            product = stage @ product
        assert np.max(np.abs(product - fft.coeff_to_slot_full())) < 1e-10

    def test_bad_fft_iter_rejected(self, fft):
        with pytest.raises(ValueError):
            fft.grouped_stages(0)
        with pytest.raises(ValueError):
            fft.grouped_stages(fft.levels + 1)


class TestFactoredBootstrap:
    @pytest.fixture(scope="class")
    def env(self):
        from repro.params import toy_params
        from repro.ckks import (
            Bootstrapper,
            CkksContext,
            Decryptor,
            Encryptor,
            KeyGenerator,
        )

        params = toy_params(log_n=4, log_q=29, max_limbs=16, dnum=4)
        ctx = CkksContext(params, scale_bits=29, seed=5)
        kg = KeyGenerator(ctx, hamming_weight=4)
        return {
            "ctx": ctx,
            "kg": kg,
            "enc": Encryptor(ctx, secret_key=kg.secret_key),
            "dec": Decryptor(ctx, kg.secret_key),
        }

    @pytest.mark.parametrize("fft_iter", [1, 2, 3])
    def test_bootstrap_with_staged_dft(self, env, fft_iter):
        from repro.ckks import Bootstrapper

        bs = Bootstrapper(env["ctx"], env["kg"], mod_degree=63, fft_iter=fft_iter)
        z = np.array([0.3, -0.25, 0.1, 0.05, -0.15, 0.2, 0.0, -0.3])
        ct = env["enc"].encrypt_values(z, scale=2.0**23, limbs=1)
        out = bs.bootstrap(ct)
        assert np.max(np.abs(env["dec"].decrypt_values(out) - z)) < 2e-2

    def test_more_iterations_consume_more_levels(self, env):
        """Matches the performance model: each extra DFT stage costs one
        level in each direction."""
        from repro.ckks import Bootstrapper

        z = np.array([0.2, -0.1, 0.0, 0.1, -0.2, 0.15, 0.05, -0.05])
        ct = env["enc"].encrypt_values(z, scale=2.0**23, limbs=1)
        levels = {}
        for fft_iter in (1, 2, 3):
            bs = Bootstrapper(
                env["ctx"], env["kg"], mod_degree=63, fft_iter=fft_iter
            )
            levels[fft_iter] = bs.bootstrap(ct).num_limbs
        assert levels[1] == levels[2] + 2 == levels[3] + 4
