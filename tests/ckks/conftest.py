import numpy as np
import pytest

from repro.params.presets import toy_params
from repro.ckks import (
    CkksContext,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
)


@pytest.fixture(scope="session")
def ctx():
    return CkksContext(toy_params(log_n=4, log_q=30, max_limbs=6, dnum=3), seed=11)


@pytest.fixture(scope="session")
def keygen(ctx):
    return KeyGenerator(ctx)


@pytest.fixture(scope="session")
def encryptor(ctx, keygen):
    return Encryptor(ctx, secret_key=keygen.secret_key)


@pytest.fixture(scope="session")
def decryptor(ctx, keygen):
    return Decryptor(ctx, keygen.secret_key)


@pytest.fixture(scope="session")
def evaluator(ctx, keygen):
    return Evaluator(
        ctx,
        relin_key=keygen.relinearization_key(),
        rotation_keys={s: keygen.rotation_key(s) for s in range(1, 8)},
        conjugation_key=keygen.conjugation_key(),
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(42)
