"""Property-based tests: random circuits evaluated homomorphically must
agree with the same circuits on plaintext numpy vectors."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.params import toy_params
from repro.ckks import (
    CkksContext,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
)

_ENV = {}


def _env():
    """Module-lazy heavy fixture (hypothesis forbids function-scoped ones)."""
    if not _ENV:
        params = toy_params(log_n=4, log_q=30, max_limbs=8, dnum=3)
        ctx = CkksContext(params, scale_bits=30, seed=23)
        kg = KeyGenerator(ctx)
        _ENV.update(
            ctx=ctx,
            enc=Encryptor(ctx, secret_key=kg.secret_key),
            dec=Decryptor(ctx, kg.secret_key),
            ev=Evaluator(
                ctx,
                relin_key=kg.relinearization_key(),
                rotation_keys={s: kg.rotation_key(s) for s in range(1, 8)},
                conjugation_key=kg.conjugation_key(),
            ),
        )
    return _ENV


_value = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)
_vector = st.lists(_value, min_size=8, max_size=8).map(np.array)

# One circuit step: (op name, operand).
_step = st.one_of(
    st.tuples(st.just("pt_add"), _vector),
    st.tuples(st.just("pt_mult"), _vector),
    st.tuples(st.just("rotate"), st.integers(1, 7)),
    st.tuples(st.just("conjugate"), st.none()),
    st.tuples(st.just("negate"), st.none()),
)


# With the int64 NTT kernels on the fast path an example runs in ~10ms,
# so a real per-example deadline is affordable again (it was `None` while
# every transform went through the pure-Python oracle).
@settings(max_examples=100, deadline=250)
@given(start=_vector, steps=st.lists(_step, min_size=1, max_size=4))
def test_random_unary_circuits_match_plaintext(start, steps):
    env = _env()
    ct = env["enc"].encrypt_values(start)
    reference = start.astype(complex)
    mult_depth = sum(1 for op, _ in steps if op == "pt_mult")
    if mult_depth > 5:
        return
    for op, arg in steps:
        if op == "pt_add":
            ct = env["ev"].pt_add(ct, list(arg))
            reference = reference + arg
        elif op == "pt_mult":
            ct = env["ev"].pt_mult(ct, list(arg))
            reference = reference * arg
        elif op == "rotate":
            ct = env["ev"].rotate(ct, arg)
            reference = np.roll(reference, -arg)
        elif op == "conjugate":
            ct = env["ev"].conjugate(ct)
            reference = np.conj(reference)
        elif op == "negate":
            ct = env["ev"].negate(ct)
            reference = -reference
    got = env["dec"].decrypt_values(ct)
    assert np.max(np.abs(got - reference)) < 1e-2


@settings(max_examples=20, deadline=None)
@given(z1=_vector, z2=_vector)
def test_mult_matches_plaintext(z1, z2):
    env = _env()
    ct = env["ev"].mult(
        env["enc"].encrypt_values(z1), env["enc"].encrypt_values(z2)
    )
    got = env["dec"].decrypt_values(ct)
    assert np.max(np.abs(got - z1 * z2)) < 1e-2


@settings(max_examples=20, deadline=None)
@given(z1=_vector, z2=_vector)
def test_merged_mod_down_matches_standard(z1, z2):
    env = _env()
    ct1 = env["enc"].encrypt_values(z1)
    ct2 = env["enc"].encrypt_values(z2)
    standard = env["dec"].decrypt_values(env["ev"].mult(ct1, ct2))
    merged = env["dec"].decrypt_values(
        env["ev"].mult(ct1, ct2, merged_mod_down=True)
    )
    assert np.max(np.abs(standard - merged)) < 1e-2


@settings(max_examples=15, deadline=None)
@given(z=_vector, steps=st.lists(st.integers(1, 7), min_size=1, max_size=4))
def test_hoisted_rotations_match_sequential(z, steps):
    env = _env()
    ct = env["enc"].encrypt_values(z)
    hoisted = env["ev"].rotations_hoisted(ct, steps)
    for step in set(steps):
        individual = env["dec"].decrypt_values(env["ev"].rotate(ct, step))
        shared = env["dec"].decrypt_values(hoisted[step])
        assert np.max(np.abs(individual - shared)) < 1e-2


@settings(max_examples=20, deadline=None)
@given(z1=_vector, z2=_vector, z3=_vector)
def test_addition_is_associative_and_commutative(z1, z2, z3):
    env = _env()
    cts = [env["enc"].encrypt_values(z) for z in (z1, z2, z3)]
    left = env["ev"].add(env["ev"].add(cts[0], cts[1]), cts[2])
    right = env["ev"].add(cts[0], env["ev"].add(cts[2], cts[1]))
    got_left = env["dec"].decrypt_values(left)
    got_right = env["dec"].decrypt_values(right)
    assert np.max(np.abs(got_left - got_right)) < 1e-3
    assert np.max(np.abs(got_left - (z1 + z2 + z3))) < 1e-3


@settings(max_examples=15, deadline=None)
@given(z=_vector, r1=st.integers(0, 7), r2=st.integers(0, 7))
def test_rotations_compose(z, r1, r2):
    env = _env()
    if (r1 + r2) % 8 == 0 or r1 == 0 or r2 == 0:
        return
    ct = env["enc"].encrypt_values(z)
    composed = env["ev"].rotate(env["ev"].rotate(ct, r1), r2)
    direct = env["ev"].rotate(ct, (r1 + r2) % 8)
    got_c = env["dec"].decrypt_values(composed)
    got_d = env["dec"].decrypt_values(direct)
    assert np.max(np.abs(got_c - got_d)) < 1e-2
