import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ckks import Encoder


@pytest.fixture(scope="module")
def encoder():
    return Encoder(degree=16, default_scale=2.0**30)


class TestConstruction:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            Encoder(degree=12, default_scale=2.0**20)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            Encoder(degree=16, default_scale=0)

    def test_slot_count(self, encoder):
        assert encoder.slots == 8


class TestEmbedProject:
    def test_project_inverts_embed(self, encoder, rng):
        z = rng.normal(size=8) + 1j * rng.normal(size=8)
        recovered = encoder.project(encoder.embed(z))
        assert np.allclose(recovered, z)

    def test_embed_inverts_project_for_real_coeffs(self, encoder, rng):
        c = rng.normal(size=16)
        assert np.allclose(encoder.embed(encoder.project(c)), c)

    def test_embed_is_real(self, encoder, rng):
        z = rng.normal(size=8) + 1j * rng.normal(size=8)
        assert encoder.embed(z).dtype == np.float64

    def test_embed_linear(self, encoder, rng):
        z1 = rng.normal(size=8) + 1j * rng.normal(size=8)
        z2 = rng.normal(size=8) + 1j * rng.normal(size=8)
        assert np.allclose(
            encoder.embed(z1 + z2), encoder.embed(z1) + encoder.embed(z2)
        )

    def test_wrong_lengths_rejected(self, encoder):
        with pytest.raises(ValueError):
            encoder.embed(np.zeros(4))
        with pytest.raises(ValueError):
            encoder.project(np.zeros(8))


class TestEncodeDecode:
    def test_round_trip(self, encoder, rng):
        z = rng.normal(size=8) + 1j * rng.normal(size=8)
        decoded = encoder.decode(encoder.encode(z))
        assert np.max(np.abs(decoded - z)) < 1e-6

    def test_round_trip_custom_scale(self, encoder, rng):
        z = rng.normal(size=8)
        decoded = encoder.decode(encoder.encode(z, 2.0**20), 2.0**20)
        assert np.max(np.abs(decoded - z)) < 1e-4

    def test_coefficients_are_integers(self, encoder):
        coeffs = encoder.encode([0.5] * 8)
        assert all(isinstance(c, int) for c in coeffs)

    def test_constant_vector_encodes_to_constant_poly(self, encoder):
        coeffs = encoder.encode([1.0] * 8)
        # A constant slot vector is the constant polynomial Delta * 1.
        assert coeffs[0] == pytest.approx(2**30, rel=1e-9)
        assert all(abs(c) <= 1 for c in coeffs[1:])

    @settings(max_examples=25)
    @given(
        st.lists(
            st.complex_numbers(max_magnitude=10, allow_nan=False, allow_infinity=False),
            min_size=8,
            max_size=8,
        )
    )
    def test_round_trip_property(self, values):
        encoder = Encoder(degree=16, default_scale=2.0**30)
        decoded = encoder.decode(encoder.encode(values))
        assert np.max(np.abs(decoded - np.asarray(values))) < 1e-5


class TestGaloisIndices:
    def test_rotation_index_is_power_of_five(self, encoder):
        assert encoder.rotation_automorphism(1) == 5
        assert encoder.rotation_automorphism(2) == 25 % 32

    def test_rotation_wraps_mod_slots(self, encoder):
        assert encoder.rotation_automorphism(9) == encoder.rotation_automorphism(1)

    def test_zero_rotation_is_identity(self, encoder):
        assert encoder.rotation_automorphism(0) == 1

    def test_conjugation_index(self, encoder):
        assert encoder.conjugation_automorphism == 31
