"""Scalability checks: the functional layer at larger ring degrees.

The unit suite runs at N = 16 for speed; these tests exercise N = 128
(64 slots) to confirm nothing in the implementation depends on tiny rings.
"""

import numpy as np
import pytest

from repro.params import toy_params
from repro.ckks import (
    CkksContext,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
)


@pytest.fixture(scope="module")
def env128():
    params = toy_params(log_n=7, log_q=40, max_limbs=5, dnum=3)
    ctx = CkksContext(params, seed=29)
    kg = KeyGenerator(ctx)
    return {
        "ctx": ctx,
        "enc": Encryptor(ctx, secret_key=kg.secret_key),
        "dec": Decryptor(ctx, kg.secret_key),
        "ev": Evaluator(
            ctx,
            relin_key=kg.relinearization_key(),
            rotation_keys={1: kg.rotation_key(1), 17: kg.rotation_key(17)},
            conjugation_key=kg.conjugation_key(),
        ),
        "rng": np.random.default_rng(0),
    }


class TestDegree128:
    def test_encrypt_decrypt(self, env128):
        z = env128["rng"].normal(size=64) + 1j * env128["rng"].normal(size=64)
        ct = env128["enc"].encrypt_values(z)
        got = env128["dec"].decrypt_values(ct)
        assert np.max(np.abs(got - z)) < 1e-6

    def test_mult(self, env128):
        rng = env128["rng"]
        z1 = rng.normal(size=64)
        z2 = rng.normal(size=64)
        ct = env128["ev"].mult(
            env128["enc"].encrypt_values(z1), env128["enc"].encrypt_values(z2)
        )
        got = env128["dec"].decrypt_values(ct)
        assert np.max(np.abs(got - z1 * z2)) < 1e-5

    def test_rotations(self, env128):
        z = env128["rng"].normal(size=64)
        ct = env128["enc"].encrypt_values(z)
        for steps in (1, 17):
            got = env128["dec"].decrypt_values(env128["ev"].rotate(ct, steps))
            assert np.max(np.abs(got - np.roll(z, -steps))) < 1e-5

    def test_conjugate(self, env128):
        z = env128["rng"].normal(size=64) + 1j * env128["rng"].normal(size=64)
        ct = env128["enc"].encrypt_values(z)
        got = env128["dec"].decrypt_values(env128["ev"].conjugate(ct))
        assert np.max(np.abs(got - np.conj(z))) < 1e-5

    def test_precision_improves_with_larger_scale(self, env128):
        """At 40-bit limbs the default 35-bit scale gives ~1e-8 accuracy."""
        z = env128["rng"].normal(size=64)
        ct = env128["enc"].encrypt_values(z)
        got = env128["dec"].decrypt_values(ct)
        assert np.max(np.abs(got - z)) < 1e-7
