import numpy as np
import pytest

from repro.params.presets import toy_params
from repro.ckks import (
    Bootstrapper,
    CkksContext,
    Decryptor,
    Encryptor,
    KeyGenerator,
    approximate_mod_poly,
)
from repro.ckks.polyeval import chebyshev_value


@pytest.fixture(scope="module")
def boot_env():
    params = toy_params(log_n=4, log_q=29, max_limbs=14, dnum=3)
    ctx = CkksContext(params, scale_bits=29, seed=5)
    kg = KeyGenerator(ctx, hamming_weight=4)
    return {
        "ctx": ctx,
        "kg": kg,
        "enc": Encryptor(ctx, secret_key=kg.secret_key),
        "dec": Decryptor(ctx, kg.secret_key),
        "bs": Bootstrapper(ctx, kg, mod_degree=63),
    }


class TestApproximateModPoly:
    def test_matches_centered_mod_near_integers(self):
        coeffs, interval = approximate_mod_poly(k_bound=4, degree=63)
        rng = np.random.default_rng(1)
        ks = rng.integers(-4, 5, size=64)
        eps = rng.uniform(-0.01, 0.01, size=64)
        xs = ks + eps
        approx = chebyshev_value(coeffs, xs, interval)
        # sin(2 pi eps)/(2 pi) = eps + O(eps^3)
        assert np.max(np.abs(approx - eps)) < 1e-5

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            approximate_mod_poly(0, 31)


class TestModRaise:
    def test_raises_to_full_chain(self, boot_env):
        enc, bs, ctx = boot_env["enc"], boot_env["bs"], boot_env["ctx"]
        ct = enc.encrypt_values([0.1] * 8, scale=2.0**23, limbs=1)
        raised = bs.mod_raise(ct)
        assert raised.num_limbs == ctx.max_limbs
        assert raised.scale == float(ctx.q_basis.moduli[0])

    def test_raised_plaintext_is_message_plus_q_multiple(self, boot_env):
        enc, dec, bs, ctx, kg = (
            boot_env["enc"],
            boot_env["dec"],
            boot_env["bs"],
            boot_env["ctx"],
            boot_env["kg"],
        )
        scale = 2.0**23
        ct = enc.encrypt_values([0.25] * 8, scale=scale, limbs=1)
        original = dec.decrypt(ct).coeffs
        raised = bs.mod_raise(ct)
        raised_coeffs = dec.decrypt(raised).coeffs
        q1 = ctx.q_basis.moduli[0]
        for got, want in zip(raised_coeffs, original):
            assert (got - want) % q1 == 0

    def test_overflow_term_bounded_by_secret_weight(self, boot_env):
        enc, dec, bs, ctx = (
            boot_env["enc"],
            boot_env["dec"],
            boot_env["bs"],
            boot_env["ctx"],
        )
        ct = enc.encrypt_values([0.2] * 8, scale=2.0**23, limbs=1)
        raised = bs.mod_raise(ct)
        q1 = ctx.q_basis.moduli[0]
        coeffs = dec.decrypt(raised).coeffs
        k_values = [round(c / q1) for c in coeffs]
        assert max(abs(k) for k in k_values) <= bs.k_bound


class TestPhases:
    def test_coeff_to_slot_extracts_coefficients(self, boot_env):
        enc, dec, bs, ctx = (
            boot_env["enc"],
            boot_env["dec"],
            boot_env["bs"],
            boot_env["ctx"],
        )
        z = np.array([0.3, -0.2, 0.15, 0.05, -0.1, 0.25, 0.0, -0.05])
        ct = enc.encrypt_values(z, scale=2.0**23, limbs=1)
        raised = bs.mod_raise(ct)
        raised_coeffs = np.array(dec.decrypt(raised).coeffs, dtype=np.float64)
        q1 = ctx.q_basis.moduli[0]
        u_real, u_imag = bs.coeff_to_slot(raised)
        got_real = dec.decrypt_values(u_real).real
        got_imag = dec.decrypt_values(u_imag).real
        assert np.max(np.abs(got_real - raised_coeffs[:8] / q1)) < 1e-2
        assert np.max(np.abs(got_imag - raised_coeffs[8:] / q1)) < 1e-2

    def test_c2s_then_s2c_is_identity(self, boot_env):
        enc, dec, bs, ctx = (
            boot_env["enc"],
            boot_env["dec"],
            boot_env["bs"],
            boot_env["ctx"],
        )
        z = np.array([0.3, -0.2, 0.15, 0.05, -0.1, 0.25, 0.0, -0.05])
        ct = enc.encrypt_values(z, scale=2.0**23, limbs=1)
        raised = bs.mod_raise(ct)
        want = dec.decrypt_values(raised)
        u_real, u_imag = bs.coeff_to_slot(raised)
        ev = bs.evaluator
        packed = ev.add(u_real, ev.pt_mult(u_imag, [1j] * 8))
        back = bs.slot_to_coeff(packed)
        got = dec.decrypt_values(back)
        assert np.max(np.abs(got - want)) / np.max(np.abs(want)) < 1e-2

    def test_eval_mod_reduces_integers(self, boot_env):
        enc, dec, bs = boot_env["enc"], boot_env["dec"], boot_env["bs"]
        # Slots hold k + eps with integer k; EvalMod should return eps.
        eps = np.array([0.01, -0.02, 0.005, 0.015, -0.01, 0.0, 0.02, -0.005])
        ks = np.array([1, -2, 0, 3, -3, 2, -1, 0])
        ct = enc.encrypt_values(ks + eps)
        out = bs.eval_mod(ct)
        got = dec.decrypt_values(out).real
        assert np.max(np.abs(got - eps)) < 2e-3


class TestFullBootstrap:
    def test_refreshes_message(self, boot_env):
        enc, dec, bs = boot_env["enc"], boot_env["dec"], boot_env["bs"]
        z = np.array([0.3, -0.25, 0.1 + 0.2j, 0.05, -0.15j, 0.2, 0.0, -0.3])
        ct = enc.encrypt_values(z, scale=2.0**23, limbs=1)
        out = bs.bootstrap(ct)
        assert out.num_limbs > 1
        assert np.max(np.abs(dec.decrypt_values(out) - z)) < 2e-2

    def test_output_supports_further_computation(self, boot_env):
        enc, dec, bs = boot_env["enc"], boot_env["dec"], boot_env["bs"]
        z = np.array([0.3, -0.2, 0.1, 0.05, -0.15, 0.2, 0.0, -0.3])
        ct = enc.encrypt_values(z, scale=2.0**23, limbs=1)
        out = bs.bootstrap(ct)
        ev = bs.evaluator
        squared = ev.mult(out, out)
        got = dec.decrypt_values(squared).real
        assert np.max(np.abs(got - z**2)) < 3e-2

    def test_multi_limb_input_accepted(self, boot_env):
        enc, dec, bs = boot_env["enc"], boot_env["dec"], boot_env["bs"]
        z = np.array([0.1, -0.1, 0.2, 0.0, 0.05, -0.05, 0.15, -0.2])
        ct = enc.encrypt_values(z, scale=2.0**23, limbs=2)
        out = bs.bootstrap(ct)
        assert np.max(np.abs(dec.decrypt_values(out) - z)) < 2e-2

    def test_naive_method_matches(self, boot_env):
        enc, dec, bs = boot_env["enc"], boot_env["dec"], boot_env["bs"]
        z = np.array([0.2, -0.1, 0.0, 0.1, -0.2, 0.15, 0.05, -0.05])
        ct = enc.encrypt_values(z, scale=2.0**23, limbs=1)
        out = bs.bootstrap(ct, method="naive")
        assert np.max(np.abs(dec.decrypt_values(out) - z)) < 2e-2

    def test_default_k_bound_derived_from_secret(self, boot_env):
        assert boot_env["bs"].k_bound == 4 // 2 + 2

    def test_fast_path_matches_oracle_bit_exactly(self, boot_env):
        # The whole pipeline — encode, ModRaise, CoeffToSlot, EvalMod,
        # SlotToCoeff, every KeySwitch — must produce the *identical*
        # ciphertext whichever NTT/conversion engine the ring layer picks.
        # This is the end-to-end form of the kernels' differential
        # contract (tests/kernels pins it per-operation).
        from repro import kernels

        enc, bs = boot_env["enc"], boot_env["bs"]
        z = np.array([0.25, -0.2, 0.1, 0.0, -0.15, 0.3, 0.05, -0.1])
        ct = enc.encrypt_values(z, scale=2.0**23, limbs=1)
        fast = bs.bootstrap(ct)
        with kernels.oracle_only():
            slow = bs.bootstrap(ct)
        assert fast.scale == slow.scale
        assert fast.c0 == slow.c0
        assert fast.c1 == slow.c1
