import numpy as np
import pytest

from repro.params import BASELINE_JUNG, toy_params
from repro.ckks import CkksContext, Decryptor, Encryptor, Evaluator, KeyGenerator
from repro.ckks.serialize import (
    ciphertext_from_dict,
    ciphertext_to_dict,
    dumps,
    loads,
    params_from_dict,
    params_to_dict,
    plaintext_from_dict,
    plaintext_to_dict,
    secret_key_from_dict,
    secret_key_to_dict,
    serialized_size,
    switching_key_from_dict,
    switching_key_to_dict,
)


class TestParamsRoundTrip:
    def test_round_trip(self):
        assert params_from_dict(params_to_dict(BASELINE_JUNG)) == BASELINE_JUNG

    def test_json_round_trip(self):
        text = dumps(params_to_dict(BASELINE_JUNG))
        assert params_from_dict(loads(text)) == BASELINE_JUNG

    def test_word_bytes_preserved(self):
        from repro.hardware import CRATERLAKE

        restored = params_from_dict(params_to_dict(CRATERLAKE.params))
        assert restored == CRATERLAKE.params
        assert restored.word_bytes == 4


class TestCiphertextRoundTrip:
    def test_round_trip_preserves_decryption(self, ctx, encryptor, decryptor, rng):
        z = rng.normal(size=8) + 1j * rng.normal(size=8)
        ct = encryptor.encrypt_values(z)
        restored = ciphertext_from_dict(
            loads(dumps(ciphertext_to_dict(ct))), ctx
        )
        assert restored.scale == ct.scale
        assert np.max(np.abs(decryptor.decrypt_values(restored) - z)) < 1e-4

    def test_restored_ciphertext_computable(self, ctx, encryptor, decryptor, evaluator, rng):
        z = rng.normal(size=8)
        ct = encryptor.encrypt_values(z)
        restored = ciphertext_from_dict(ciphertext_to_dict(ct), ctx)
        doubled = evaluator.add(restored, restored)
        assert np.max(np.abs(decryptor.decrypt_values(doubled) - 2 * z)) < 1e-3


class TestPlaintextRoundTrip:
    def test_round_trip(self, ctx):
        pt = ctx.encoder.encode([0.5] * 8)
        from repro.ckks import Plaintext

        original = Plaintext(pt, ctx.scale)
        restored = plaintext_from_dict(plaintext_to_dict(original))
        assert restored == original


class TestSecretKeyRoundTrip:
    def test_round_trip_decrypts(self, ctx, keygen, encryptor, rng):
        restored = secret_key_from_dict(
            secret_key_to_dict(keygen.secret_key), ctx
        )
        dec = Decryptor(ctx, restored)
        z = rng.normal(size=8)
        ct = encryptor.encrypt_values(z)
        assert np.max(np.abs(dec.decrypt_values(ct) - z)) < 1e-4


class TestSwitchingKeyRoundTrip:
    @pytest.fixture(scope="class")
    def fresh_env(self):
        context = CkksContext(toy_params(), seed=31)
        kg = KeyGenerator(context, compress_keys=True)
        return context, kg

    def test_compressed_round_trip_functional(self, fresh_env, rng):
        context, kg = fresh_env
        relin = kg.relinearization_key()
        restored = switching_key_from_dict(
            loads(dumps(switching_key_to_dict(relin, compressed=True))),
            context,
        )
        # The restored key must actually relinearise correctly.
        enc = Encryptor(context, secret_key=kg.secret_key)
        dec = Decryptor(context, kg.secret_key)
        ev = Evaluator(context, relin_key=restored)
        z = rng.normal(size=context.slots)
        ct = enc.encrypt_values(z)
        out = ev.mult(ct, ct)
        assert np.max(np.abs(dec.decrypt_values(out) - z * z)) < 1e-2

    def test_expanded_a_rows_match_original(self, fresh_env):
        context, kg = fresh_env
        relin = kg.relinearization_key()
        restored = switching_key_from_dict(
            switching_key_to_dict(relin, compressed=True), context
        )
        for (b0, a0), (b1, a1) in zip(relin.digits, restored.digits):
            assert a0 == a1
            assert b0 == b1

    def test_compression_halves_serialized_size(self, fresh_env):
        context, kg = fresh_env
        relin = kg.relinearization_key()
        compressed = serialized_size(switching_key_to_dict(relin, compressed=True))
        full = serialized_size(switching_key_to_dict(relin, compressed=False))
        assert compressed < 0.6 * full  # ~half, as the paper claims

    def test_uncompressed_round_trip(self, fresh_env, rng):
        context, kg = fresh_env
        relin = kg.relinearization_key()
        restored = switching_key_from_dict(
            switching_key_to_dict(relin, compressed=False), context
        )
        assert not restored.is_compressed
        for (b0, a0), (b1, a1) in zip(relin.digits, restored.digits):
            assert a0 == a1 and b0 == b1

    def test_compressed_requires_seeds(self):
        context = CkksContext(toy_params(), seed=37)
        kg = KeyGenerator(context, compress_keys=False)
        with pytest.raises(ValueError):
            switching_key_to_dict(kg.relinearization_key(), compressed=True)
