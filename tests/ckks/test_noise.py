import math

import numpy as np
import pytest

from repro.params import toy_params
from repro.ckks.noise import (
    NoiseEstimate,
    NoiseEstimator,
    measured_noise_bits,
    _log2_sum,
)


class TestLog2Sum:
    def test_equal_terms(self):
        assert _log2_sum(3.0, 3.0) == pytest.approx(4.0)

    def test_dominant_term(self):
        assert _log2_sum(100.0, 0.0) == pytest.approx(100.0)

    def test_commutative(self):
        assert _log2_sum(2.0, 7.0) == _log2_sum(7.0, 2.0)


class TestMeasuredNoise:
    def test_exact_match_is_minus_infinity(self):
        assert measured_noise_bits([1.0, 2.0], [1.0, 2.0]) == float("-inf")

    def test_known_error(self):
        got = measured_noise_bits([1.0 + 2**-10], [1.0])
        assert got == pytest.approx(-10.0)


class TestNoiseEstimate:
    def test_precision(self):
        est = NoiseEstimate(noise_bits=5.0, scale_bits=25.0)
        assert est.precision_bits == 20.0
        assert est.is_usable()

    def test_unusable(self):
        est = NoiseEstimate(noise_bits=24.0, scale_bits=25.0)
        assert not est.is_usable(required_bits=4.0)


class TestNoiseEstimator:
    @pytest.fixture(scope="class")
    def estimator(self):
        return NoiseEstimator(toy_params(log_n=4, log_q=30, max_limbs=8, dnum=3))

    def test_fresh_has_high_precision(self, estimator):
        est = estimator.fresh(scale_bits=25)
        assert est.precision_bits > 15

    def test_add_grows_noise_slightly(self, estimator):
        fresh = estimator.fresh(25)
        summed = estimator.add(fresh, fresh)
        assert fresh.noise_bits < summed.noise_bits <= fresh.noise_bits + 1.01

    def test_add_rejects_scale_mismatch(self, estimator):
        with pytest.raises(ValueError):
            estimator.add(estimator.fresh(25), estimator.fresh(20))

    def test_mult_then_rescale_keeps_scale(self, estimator):
        fresh = estimator.fresh(25)
        out = estimator.rescale(estimator.mult(fresh, fresh))
        assert out.scale_bits == pytest.approx(2 * 25 - 30)

    def test_rotation_adds_bounded_noise(self, estimator):
        fresh = estimator.fresh(25)
        rotated = estimator.rotate(fresh)
        assert rotated.scale_bits == fresh.scale_bits
        assert rotated.noise_bits >= fresh.noise_bits

    def test_depth_budget_positive_with_matched_scale(self):
        params = toy_params(log_n=4, log_q=30, max_limbs=8, dnum=3)
        estimator = NoiseEstimator(params)
        assert estimator.depth_budget(scale_bits=30) >= 2

    def test_depth_budget_shrinks_with_small_scale(self):
        params = toy_params(log_n=4, log_q=30, max_limbs=8, dnum=3)
        estimator = NoiseEstimator(params)
        small = estimator.depth_budget(scale_bits=14)
        large = estimator.depth_budget(scale_bits=30)
        assert small <= large


class TestEstimatesAgainstRealScheme:
    """The analytical bounds must upper-bound (not wildly exceed) reality."""

    @pytest.fixture(scope="class")
    def env(self):
        from repro.ckks import CkksContext, Decryptor, Encryptor, Evaluator, KeyGenerator

        params = toy_params(log_n=4, log_q=30, max_limbs=8, dnum=3)
        ctx = CkksContext(params, scale_bits=25, seed=17)
        kg = KeyGenerator(ctx)
        return {
            "params": params,
            "ctx": ctx,
            "enc": Encryptor(ctx, secret_key=kg.secret_key),
            "dec": Decryptor(ctx, kg.secret_key),
            "ev": Evaluator(ctx, relin_key=kg.relinearization_key()),
            "est": NoiseEstimator(params),
        }

    def test_fresh_encryption_within_estimate(self, env):
        z = np.linspace(-1, 1, 8)
        ct = env["enc"].encrypt_values(z)
        measured = measured_noise_bits(env["dec"].decrypt_values(ct), z)
        predicted = env["est"].fresh(25)
        # measured error (in message units) = noise / scale.
        assert measured <= predicted.noise_bits - predicted.scale_bits + 4

    def test_mult_within_estimate(self, env):
        z = np.linspace(-0.9, 0.9, 8)
        ct = env["enc"].encrypt_values(z)
        out = env["ev"].mult(ct, ct)
        measured = measured_noise_bits(env["dec"].decrypt_values(out), z * z)
        fresh = env["est"].fresh(25)
        predicted = env["est"].rescale(env["est"].mult(fresh, fresh))
        assert measured <= predicted.noise_bits - predicted.scale_bits + 6
