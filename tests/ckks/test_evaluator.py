import numpy as np
import pytest

from repro.ckks import Ciphertext


@pytest.fixture()
def z1(rng):
    return rng.normal(size=8) + 1j * rng.normal(size=8)


@pytest.fixture()
def z2(rng):
    return rng.normal(size=8) + 1j * rng.normal(size=8)


def _err(decryptor, ct, want):
    return np.max(np.abs(decryptor.decrypt_values(ct) - want))


class TestAdditive:
    def test_add(self, encryptor, decryptor, evaluator, z1, z2):
        ct = evaluator.add(
            encryptor.encrypt_values(z1), encryptor.encrypt_values(z2)
        )
        assert _err(decryptor, ct, z1 + z2) < 1e-4

    def test_sub(self, encryptor, decryptor, evaluator, z1, z2):
        ct = evaluator.sub(
            encryptor.encrypt_values(z1), encryptor.encrypt_values(z2)
        )
        assert _err(decryptor, ct, z1 - z2) < 1e-4

    def test_negate(self, encryptor, decryptor, evaluator, z1):
        ct = evaluator.negate(encryptor.encrypt_values(z1))
        assert _err(decryptor, ct, -z1) < 1e-4

    def test_pt_add(self, encryptor, decryptor, evaluator, z1, z2):
        ct = evaluator.pt_add(encryptor.encrypt_values(z1), list(z2))
        assert _err(decryptor, ct, z1 + z2) < 1e-4

    def test_pt_add_leaves_c1_untouched(self, encryptor, evaluator, z1, z2):
        ct = encryptor.encrypt_values(z1)
        out = evaluator.pt_add(ct, list(z2))
        assert out.c1 == ct.c1

    def test_add_mixed_levels_aligns(self, encryptor, decryptor, evaluator, z1, z2):
        ct1 = encryptor.encrypt_values(z1, limbs=5)
        ct2 = encryptor.encrypt_values(z2, limbs=3)
        out = evaluator.add(ct1, ct2)
        assert out.num_limbs == 3
        assert _err(decryptor, out, z1 + z2) < 1e-4

    def test_add_scale_mismatch_rejected(self, encryptor, evaluator, z1):
        ct1 = encryptor.encrypt_values(z1)
        ct2 = encryptor.encrypt_values(z1, scale=2.0**20)
        with pytest.raises(ValueError):
            evaluator.add(ct1, ct2)


class TestMultiplicative:
    def test_pt_mult(self, encryptor, decryptor, evaluator, z1, z2):
        ct = evaluator.pt_mult(encryptor.encrypt_values(z1), list(z2))
        assert _err(decryptor, ct, z1 * z2) < 1e-3

    def test_pt_mult_consumes_level(self, encryptor, evaluator, z1, z2):
        ct = encryptor.encrypt_values(z1)
        out = evaluator.pt_mult(ct, list(z2))
        assert out.num_limbs == ct.num_limbs - 1

    def test_pt_mult_no_rescale(self, encryptor, decryptor, evaluator, z1, z2):
        ct = encryptor.encrypt_values(z1)
        out = evaluator.pt_mult(ct, list(z2), rescale=False)
        assert out.num_limbs == ct.num_limbs
        assert out.scale == pytest.approx(ct.scale * evaluator.context.scale)
        assert _err(decryptor, out, z1 * z2) < 1e-3

    def test_mult(self, encryptor, decryptor, evaluator, z1, z2):
        ct = evaluator.mult(
            encryptor.encrypt_values(z1), encryptor.encrypt_values(z2)
        )
        assert _err(decryptor, ct, z1 * z2) < 1e-3

    def test_mult_merged_mod_down_matches(self, encryptor, decryptor, evaluator, z1, z2):
        ct1 = encryptor.encrypt_values(z1)
        ct2 = encryptor.encrypt_values(z2)
        standard = evaluator.mult(ct1, ct2)
        merged = evaluator.mult(ct1, ct2, merged_mod_down=True)
        assert merged.num_limbs == standard.num_limbs
        assert merged.scale == pytest.approx(standard.scale)
        assert _err(decryptor, merged, z1 * z2) < 1e-3

    def test_mult_without_rescale_keeps_level(self, encryptor, evaluator, z1, z2):
        out = evaluator.mult(
            encryptor.encrypt_values(z1),
            encryptor.encrypt_values(z2),
            rescale=False,
        )
        assert out.num_limbs == evaluator.context.max_limbs

    def test_merged_requires_rescale(self, encryptor, evaluator, z1, z2):
        with pytest.raises(ValueError):
            evaluator.mult(
                encryptor.encrypt_values(z1),
                encryptor.encrypt_values(z2),
                rescale=False,
                merged_mod_down=True,
            )

    def test_mult_requires_relin_key(self, ctx, encryptor, z1, z2):
        from repro.ckks import Evaluator

        bare = Evaluator(ctx)
        with pytest.raises(ValueError):
            bare.mult(
                encryptor.encrypt_values(z1), encryptor.encrypt_values(z2)
            )

    def test_depth_two_circuit(self, encryptor, decryptor, evaluator, z1, z2):
        ct1 = encryptor.encrypt_values(z1)
        ct2 = encryptor.encrypt_values(z2)
        # (z1 * z2) * z1
        out = evaluator.mult(evaluator.mult(ct1, ct2), ct1)
        assert _err(decryptor, out, z1 * z2 * z1) < 5e-3


class TestRescaleAndLevels:
    def test_rescale_drops_limb_and_scale(self, encryptor, evaluator, z1):
        ct = encryptor.encrypt_values(z1)
        ct = evaluator.pt_mult(ct, [1.0] * 8, rescale=False)
        out = evaluator.rescale(ct)
        assert out.num_limbs == ct.num_limbs - 1
        dropped = ct.basis.moduli[-1]
        assert out.scale == pytest.approx(ct.scale / dropped)

    def test_reduce_level(self, encryptor, decryptor, evaluator, z1):
        ct = encryptor.encrypt_values(z1)
        out = evaluator.reduce_level(ct, 2)
        assert out.num_limbs == 2
        assert _err(decryptor, out, z1) < 1e-4

    def test_reduce_level_validates(self, encryptor, evaluator, z1):
        ct = encryptor.encrypt_values(z1, limbs=3)
        with pytest.raises(ValueError):
            evaluator.reduce_level(ct, 4)
        with pytest.raises(ValueError):
            evaluator.reduce_level(ct, 0)

    def test_pt_mult_at_lands_on_target_scale(
        self, encryptor, decryptor, evaluator, z1, z2
    ):
        ct = encryptor.encrypt_values(z1)
        # A target no rescale prime would naturally produce.
        target = ct.scale * 1.07
        out = evaluator.pt_mult_at(ct, list(z2), target)
        assert out.scale == target
        assert out.num_limbs == ct.num_limbs - 1
        assert _err(decryptor, out, z1 * z2) < 1e-4

    def test_pt_mult_at_requires_spare_level(self, encryptor, evaluator, z1):
        ct = encryptor.encrypt_values(z1, limbs=1)
        with pytest.raises(ValueError):
            evaluator.pt_mult_at(ct, [1.0] * 8, ct.scale)

    def test_match_scale_repairs_drifted_addition(
        self, encryptor, decryptor, evaluator, z1, z2
    ):
        ct1 = encryptor.encrypt_values(z1)
        # Drift ct2's scale well past the tolerance: the raw add must
        # reject the pair, the matched add must decrypt correctly.
        drifted = Ciphertext(ct1.c0, ct1.c1, ct1.scale * 1.2)
        ct2 = encryptor.encrypt_values(z2)
        with pytest.raises(ValueError):
            evaluator.add(ct2, drifted)
        out = evaluator.add(
            ct2, evaluator.match_scale(drifted, ct2.scale)
        )
        # drifted's declared scale overstates the encoding by 1.2x, so
        # its decrypted contribution is z1 / 1.2.
        assert _err(decryptor, out, z2 + z1 / 1.2) < 1e-4

    def test_match_scale_is_noop_within_tolerance(self, encryptor, evaluator, z1):
        ct = encryptor.encrypt_values(z1)
        nearly = ct.scale * (1.0 + evaluator.scale_rtol / 2)
        assert evaluator.match_scale(ct, nearly) is ct

    def test_match_scale_tight_rtol_forces_exact_landing(
        self, encryptor, decryptor, evaluator, z1
    ):
        # A drift inside the additive 5% window but outside the caller's
        # tighter budget must spend a level and land exactly on target.
        ct = encryptor.encrypt_values(z1)
        target = ct.scale * 1.01
        out = evaluator.match_scale(ct, target, rtol=1e-9)
        assert out is not ct
        assert out.scale == target
        assert out.num_limbs == ct.num_limbs - 1
        assert _err(decryptor, out, z1) < 1e-2


class TestKeySwitchNoiseHeadroom:
    @staticmethod
    def _rotation_error(log_special):
        from repro.ckks import CkksContext, Decryptor, Encryptor, KeyGenerator
        from repro.ckks.evaluator import Evaluator
        from repro.params import toy_params

        params = toy_params(
            log_n=6, log_q=29, max_limbs=12, dnum=3, log_special=log_special
        )
        ctx = CkksContext(params, scale_bits=29, seed=7)
        kg = KeyGenerator(ctx, hamming_weight=4)
        enc = Encryptor(ctx, secret_key=kg.secret_key)
        dec = Decryptor(ctx, kg.secret_key)
        ev = Evaluator(ctx, rotation_keys={1: kg.rotation_key(1)})
        rng = np.random.default_rng(3)
        n = ctx.slots
        z = rng.uniform(-1, 1, n) + 1j * rng.uniform(-1, 1, n)
        ct = enc.encrypt_values(z, scale=ctx.scale, limbs=params.max_limbs)
        got = dec.decrypt_values(ev.rotate(ct, 1))
        return np.max(np.abs(np.asarray(got) - np.roll(z, -1)))

    def test_wider_special_primes_shave_key_switch_noise(self):
        # With special primes the same width as the limbs, P is barely as
        # large as the biggest digit, so the approximate-ModUp overflow
        # (up to alpha * B * e) survives ModDown almost undamped.  One
        # extra bit per special prime gives P an alpha-bit margin over B
        # and the digit noise collapses; deep big-ring circuits (the
        # N=2^14 bootstrap) depend on this headroom.
        baseline = self._rotation_error(None)
        headroom = self._rotation_error(30)
        assert headroom < baseline / 3
    @pytest.mark.parametrize("steps", [1, 2, 3, 7])
    def test_rotate(self, encryptor, decryptor, evaluator, z1, steps):
        ct = evaluator.rotate(encryptor.encrypt_values(z1), steps)
        assert _err(decryptor, ct, np.roll(z1, -steps)) < 1e-3

    def test_rotate_zero_is_identity(self, encryptor, evaluator, z1):
        ct = encryptor.encrypt_values(z1)
        assert evaluator.rotate(ct, 0) is ct

    def test_rotate_full_cycle(self, encryptor, evaluator, z1):
        ct = encryptor.encrypt_values(z1)
        assert evaluator.rotate(ct, 8) is ct

    def test_missing_key_raises(self, ctx, encryptor, z1):
        from repro.ckks import Evaluator

        bare = Evaluator(ctx)
        with pytest.raises(ValueError):
            bare.rotate(encryptor.encrypt_values(z1), 1)

    def test_conjugate(self, encryptor, decryptor, evaluator, z1):
        ct = evaluator.conjugate(encryptor.encrypt_values(z1))
        assert _err(decryptor, ct, np.conj(z1)) < 1e-3

    def test_double_conjugate_is_identity(self, encryptor, decryptor, evaluator, z1):
        ct = evaluator.conjugate(
            evaluator.conjugate(encryptor.encrypt_values(z1))
        )
        assert _err(decryptor, ct, z1) < 1e-3

    def test_rotate_composes(self, encryptor, decryptor, evaluator, z1):
        ct = encryptor.encrypt_values(z1)
        composed = evaluator.rotate(evaluator.rotate(ct, 1), 2)
        assert _err(decryptor, composed, np.roll(z1, -3)) < 1e-3

    def test_rotate_at_low_level(self, encryptor, decryptor, evaluator, z1):
        ct = encryptor.encrypt_values(z1, limbs=2)
        out = evaluator.rotate(ct, 1)
        assert out.num_limbs == 2
        assert _err(decryptor, out, np.roll(z1, -1)) < 1e-3


class TestHoistedRotations:
    def test_matches_individual_rotations(self, encryptor, decryptor, evaluator, z1):
        ct = encryptor.encrypt_values(z1)
        hoisted = evaluator.rotations_hoisted(ct, [1, 2, 3])
        for steps, rotated in hoisted.items():
            assert _err(decryptor, rotated, np.roll(z1, -steps)) < 1e-3

    def test_includes_identity(self, encryptor, evaluator, z1):
        ct = encryptor.encrypt_values(z1)
        hoisted = evaluator.rotations_hoisted(ct, [0, 1])
        assert hoisted[0] is ct

    def test_missing_key_raises(self, encryptor, evaluator, z1):
        ct = encryptor.encrypt_values(z1)
        evaluator_keys = dict(evaluator.rotation_keys)
        try:
            del evaluator.rotation_keys[3]
            with pytest.raises(ValueError):
                evaluator.rotations_hoisted(ct, [3])
        finally:
            evaluator.rotation_keys = evaluator_keys


class TestKeySwitchInternals:
    def test_decompose_digit_count(self, ctx, encryptor, evaluator, z1):
        ct = encryptor.encrypt_values(z1)
        digits = evaluator.decompose(ct.c1)
        import math

        assert len(digits) == math.ceil(ct.num_limbs / ctx.params.alpha)

    def test_decompose_preserves_rows(self, encryptor, evaluator, z1):
        ct = encryptor.encrypt_values(z1)
        digits = evaluator.decompose(ct.c1)
        reassembled = [row for digit in digits for row in digit.limbs]
        assert reassembled == list(ct.c1.limbs)

    def test_raised_digits_live_over_raised_basis(self, ctx, encryptor, evaluator, z1):
        ct = encryptor.encrypt_values(z1, limbs=4)
        raised = evaluator.raise_digits(ct.c1)
        target = ctx.raised_basis(4)
        for digit in raised:
            assert digit.basis == target

    def test_key_switch_decrypts_to_product(self, ctx, keygen, encryptor, evaluator, z1):
        # key_switch(c1, rlk) should produce an encryption of c1 * s^2.
        ct = encryptor.encrypt_values(z1)
        u, v = evaluator.key_switch(ct.c1, evaluator.relin_key)
        basis = ct.basis
        s = keygen.secret_key.poly(basis)
        lhs = (u + v * s).to_int_coeffs()
        rhs = (ct.c1 * s * s).to_int_coeffs()
        scale = max(abs(x) for x in rhs) or 1
        worst = max(abs(a - b) for a, b in zip(lhs, rhs))
        assert worst / scale < 1e-5
