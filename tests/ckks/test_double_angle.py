import numpy as np
import pytest

from repro.params import toy_params
from repro.ckks import (
    Bootstrapper,
    CkksContext,
    Decryptor,
    Encryptor,
    KeyGenerator,
)
from repro.ckks.bootstrap import reduced_cos_poly
from repro.ckks.polyeval import chebyshev_value


class TestReducedCosPoly:
    def test_doubling_recovers_sine(self):
        """cos((2 pi u - pi/2)/2^r) squared up r times equals sin(2 pi u)."""
        coeffs, interval = reduced_cos_poly(4, 31, 2)
        u = np.linspace(*interval, 501)
        g = chebyshev_value(coeffs, u, interval)
        for _ in range(2):
            g = 2 * g * g - 1
        assert np.max(np.abs(g - np.sin(2 * np.pi * u))) < 1e-10

    def test_angle_reduction_lowers_required_degree(self):
        """The reduced argument needs far fewer Chebyshev terms."""
        u = np.linspace(-4.5, 4.5, 501)
        # Direct sine at degree 31 over [-4.5, 4.5] is a poor fit...
        from repro.ckks.polyeval import chebyshev_fit

        direct = chebyshev_fit(
            lambda x: np.sin(2 * np.pi * x), 31, (-4.5, 4.5)
        )
        direct_err = np.max(
            np.abs(chebyshev_value(direct, u, (-4.5, 4.5)) - np.sin(2 * np.pi * u))
        )
        # ...while the r=2 reduced cosine at the same degree is excellent.
        coeffs, interval = reduced_cos_poly(4, 31, 2)
        g = chebyshev_value(coeffs, u, interval)
        for _ in range(2):
            g = 2 * g * g - 1
        reduced_err = np.max(np.abs(g - np.sin(2 * np.pi * u)))
        assert reduced_err < direct_err / 100

    def test_validation(self):
        with pytest.raises(ValueError):
            reduced_cos_poly(0, 31, 1)
        with pytest.raises(ValueError):
            reduced_cos_poly(4, 31, 0)


class TestDoubleAngleBootstrap:
    @pytest.fixture(scope="class")
    def env(self):
        params = toy_params(log_n=4, log_q=29, max_limbs=16, dnum=4)
        ctx = CkksContext(params, scale_bits=29, seed=5)
        kg = KeyGenerator(ctx, hamming_weight=4)
        return {
            "ctx": ctx,
            "kg": kg,
            "enc": Encryptor(ctx, secret_key=kg.secret_key),
            "dec": Decryptor(ctx, kg.secret_key),
        }

    def test_refreshes_message(self, env):
        bs = Bootstrapper(
            env["ctx"], env["kg"], mod_degree=47, double_angle_iters=1
        )
        z = np.array([0.3, -0.25, 0.1, 0.05, -0.15, 0.2, 0.0, -0.3])
        ct = env["enc"].encrypt_values(z, scale=2.0**23, limbs=1)
        out = bs.bootstrap(ct)
        assert out.num_limbs > 1
        # Double-angle trades precision for Chebyshev degree; at toy
        # precision the squarings amplify noise ~4x per iteration.
        assert np.max(np.abs(env["dec"].decrypt_values(out) - z)) < 0.1

    def test_uses_lower_degree_than_direct(self, env):
        direct = Bootstrapper(env["ctx"], env["kg"], mod_degree=63)
        reduced = Bootstrapper(
            env["ctx"], env["kg"], mod_degree=31, double_angle_iters=2
        )
        assert reduced.mod_degree < direct.mod_degree
        assert reduced.double_angle_iters == 2

    def test_direct_path_more_precise_at_toy_scale(self, env):
        z = np.array([0.2, -0.1, 0.15, 0.0, -0.2, 0.1, 0.05, -0.05])
        ct = env["enc"].encrypt_values(z, scale=2.0**23, limbs=1)
        direct = Bootstrapper(env["ctx"], env["kg"], mod_degree=63)
        reduced = Bootstrapper(
            env["ctx"], env["kg"], mod_degree=47, double_angle_iters=1
        )
        err_direct = np.max(
            np.abs(env["dec"].decrypt_values(direct.bootstrap(ct)) - z)
        )
        err_reduced = np.max(
            np.abs(env["dec"].decrypt_values(reduced.bootstrap(ct)) - z)
        )
        assert err_direct < err_reduced  # noise amplification of squaring
        assert err_reduced < 0.1
