import numpy as np
import pytest

from repro.ckks import Decryptor, Encryptor


class TestSymmetricEncryption:
    def test_round_trip(self, encryptor, decryptor, rng):
        z = rng.normal(size=8) + 1j * rng.normal(size=8)
        ct = encryptor.encrypt_values(z)
        assert np.max(np.abs(decryptor.decrypt_values(ct) - z)) < 1e-4

    def test_encrypt_at_lower_level(self, encryptor, decryptor, rng):
        z = rng.normal(size=8)
        ct = encryptor.encrypt_values(z, limbs=2)
        assert ct.num_limbs == 2
        assert np.max(np.abs(decryptor.decrypt_values(ct) - z)) < 1e-4

    def test_custom_scale(self, encryptor, decryptor, rng):
        z = rng.normal(size=8)
        ct = encryptor.encrypt_values(z, scale=2.0**20)
        assert ct.scale == 2.0**20
        assert np.max(np.abs(decryptor.decrypt_values(ct) - z)) < 1e-3

    def test_fresh_ciphertexts_differ(self, encryptor):
        z = [1.0] * 8
        ct1 = encryptor.encrypt_values(z)
        ct2 = encryptor.encrypt_values(z)
        assert ct1.c1 != ct2.c1  # randomness present

    def test_noise_is_small_but_nonzero(self, encryptor, decryptor):
        z = np.zeros(8)
        ct = encryptor.encrypt_values(z)
        values = decryptor.decrypt_values(ct)
        assert 0 < np.max(np.abs(values)) < 1e-4


class TestPublicKeyEncryption:
    def test_round_trip(self, ctx, keygen, decryptor, rng):
        pk = keygen.public_key()
        enc = Encryptor(ctx, public_key=pk)
        z = rng.normal(size=8) + 1j * rng.normal(size=8)
        ct = enc.encrypt_values(z)
        assert np.max(np.abs(decryptor.decrypt_values(ct) - z)) < 1e-3

    def test_round_trip_lower_level(self, ctx, keygen, decryptor, rng):
        enc = Encryptor(ctx, public_key=keygen.public_key())
        z = rng.normal(size=8)
        ct = enc.encrypt_values(z, limbs=3)
        assert ct.num_limbs == 3
        assert np.max(np.abs(decryptor.decrypt_values(ct) - z)) < 1e-3

    def test_requires_some_key(self, ctx):
        with pytest.raises(ValueError):
            Encryptor(ctx)


class TestDecryptor:
    def test_decrypt_returns_plaintext_with_scale(self, encryptor, decryptor):
        ct = encryptor.encrypt_values([0.5] * 8)
        pt = decryptor.decrypt(ct)
        assert pt.scale == ct.scale
        assert len(pt.coeffs) == 16

    def test_wrong_key_garbles(self, ctx, encryptor):
        from repro.ckks import KeyGenerator

        other = KeyGenerator(ctx)
        wrong = Decryptor(ctx, other.secret_key)
        z = np.full(8, 0.5)
        ct = encryptor.encrypt_values(z)
        assert np.max(np.abs(wrong.decrypt_values(ct) - z)) > 1.0
