import pytest

from repro.params.presets import toy_params
from repro.ckks import CkksContext, KeyGenerator, SecretKey


class TestSecretKey:
    def test_dense_ternary(self, ctx, keygen):
        assert all(c in (-1, 0, 1) for c in keygen.secret_key.coeffs)

    def test_sparse_secret_weight(self):
        context = CkksContext(toy_params(), seed=7)
        kg = KeyGenerator(context, hamming_weight=4)
        assert sum(1 for c in kg.secret_key.coeffs if c) == 4

    def test_sparse_weight_bounds_checked(self):
        context = CkksContext(toy_params(), seed=7)
        with pytest.raises(ValueError):
            KeyGenerator(context, hamming_weight=0)
        with pytest.raises(ValueError):
            KeyGenerator(context, hamming_weight=context.degree + 1)

    def test_rejects_non_ternary(self, ctx):
        with pytest.raises(ValueError):
            SecretKey(ctx, [2] * ctx.degree)

    def test_rejects_wrong_length(self, ctx):
        with pytest.raises(ValueError):
            SecretKey(ctx, [0, 1])

    def test_poly_cache_returns_same_object(self, keygen, ctx):
        basis = ctx.basis_at(3)
        assert keygen.secret_key.poly(basis) is keygen.secret_key.poly(basis)


class TestSwitchingKeys:
    def test_digit_count_matches_dnum_grouping(self, ctx, keygen):
        key = keygen.relinearization_key()
        assert key.dnum == ctx.num_digits

    def test_keys_live_over_raised_basis(self, ctx, keygen):
        key = keygen.relinearization_key()
        raised = ctx.raised_basis(ctx.max_limbs)
        for b, a in key.digits:
            assert b.basis == raised
            assert a.basis == raised

    def test_compression_flag(self, ctx):
        kg_compressed = KeyGenerator(ctx, compress_keys=True)
        kg_full = KeyGenerator(ctx, compress_keys=False)
        assert kg_compressed.relinearization_key().is_compressed
        assert not kg_full.relinearization_key().is_compressed

    def test_compression_halves_stored_bytes(self, ctx):
        compressed = KeyGenerator(ctx, compress_keys=True).relinearization_key()
        full = KeyGenerator(ctx, compress_keys=False).relinearization_key()
        assert 2 * compressed.stored_bytes() == full.stored_bytes()

    def test_restriction_selects_live_rows(self, ctx, keygen):
        key = keygen.relinearization_key()
        limbs = 3
        restricted = key.restricted(limbs, ctx)
        raised = ctx.raised_basis(limbs)
        for b, a in restricted:
            assert b.basis == raised
            assert b.num_limbs == limbs + len(ctx.special_moduli)

    def test_restriction_cached(self, ctx, keygen):
        key = keygen.relinearization_key()
        assert key.restricted(2, ctx) is key.restricted(2, ctx)

    def test_source_must_be_raised(self, ctx, keygen):
        s_small = keygen.secret_key.poly(ctx.basis_at(2))
        with pytest.raises(ValueError):
            keygen.switching_key(s_small)


class TestDigitSelectors:
    def test_selector_is_indicator(self, ctx):
        for digit in range(ctx.num_digits):
            selector = ctx.digit_selector(digit)
            alpha = ctx.params.alpha
            for j, q in enumerate(ctx.q_basis.moduli):
                expected = 1 if digit * alpha <= j < (digit + 1) * alpha else 0
                assert selector % q == expected

    def test_selector_out_of_range(self, ctx):
        with pytest.raises(ValueError):
            ctx.digit_selector(ctx.num_digits + 5)

    def test_selectors_sum_to_one(self, ctx):
        total = sum(ctx.digit_selector(i) for i in range(ctx.num_digits))
        for q in ctx.q_basis.moduli:
            assert total % q == 1
