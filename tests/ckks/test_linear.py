import numpy as np
import pytest

from repro.ckks import LinearTransform
from repro.ckks.linear import matrix_diagonals


class TestMatrixDiagonals:
    def test_identity_has_single_diagonal(self):
        diags = matrix_diagonals(np.eye(8))
        assert set(diags) == {0}
        assert np.allclose(diags[0], np.ones(8))

    def test_shift_matrix_is_one_diagonal(self):
        shift = np.roll(np.eye(8), 1, axis=1)  # y_j = z_{j+1}
        diags = matrix_diagonals(shift)
        assert set(diags) == {1}

    def test_dense_matrix_has_all_diagonals(self, rng):
        m = rng.normal(size=(8, 8))
        assert len(matrix_diagonals(m)) == 8

    def test_zero_matrix_has_none(self):
        assert matrix_diagonals(np.zeros((8, 8))) == {}

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            matrix_diagonals(np.zeros((4, 8)))

    def test_diagonal_extraction_formula(self, rng):
        m = rng.normal(size=(8, 8))
        diags = matrix_diagonals(m)
        for d, diag in diags.items():
            for j in range(8):
                assert diag[j] == m[j, (j + d) % 8]


class TestApply:
    @pytest.fixture()
    def dense(self, rng):
        return rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))

    @pytest.mark.parametrize("method", ["naive", "hoisted", "bsgs"])
    def test_matvec(self, method, dense, encryptor, decryptor, evaluator, rng):
        z = rng.normal(size=8) + 1j * rng.normal(size=8)
        ct = encryptor.encrypt_values(z)
        out = LinearTransform(dense).apply(evaluator, ct, method=method)
        got = decryptor.decrypt_values(out)
        assert np.max(np.abs(got - dense @ z)) < 1e-3

    @pytest.mark.parametrize("method", ["naive", "hoisted"])
    def test_conjugate_aware(self, method, dense, encryptor, decryptor, evaluator, rng):
        m2 = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        z = rng.normal(size=8) + 1j * rng.normal(size=8)
        ct = encryptor.encrypt_values(z)
        out = LinearTransform(dense, m2).apply(evaluator, ct, method=method)
        got = decryptor.decrypt_values(out)
        want = dense @ z + m2 @ np.conj(z)
        assert np.max(np.abs(got - want)) < 1e-3

    def test_identity_transform(self, encryptor, decryptor, evaluator, rng):
        z = rng.normal(size=8)
        ct = encryptor.encrypt_values(z)
        out = LinearTransform(np.eye(8)).apply(evaluator, ct)
        assert np.max(np.abs(decryptor.decrypt_values(out) - z)) < 1e-3

    def test_sparse_matrix_uses_few_rotations(self):
        tridiag = np.eye(8) + np.roll(np.eye(8), 1, axis=1) + np.roll(np.eye(8), -1, axis=1)
        lt = LinearTransform(tridiag)
        assert len(lt.required_rotations("naive")) == 2  # steps 1 and 7

    def test_consumes_one_level(self, dense, encryptor, evaluator, rng):
        ct = encryptor.encrypt_values(rng.normal(size=8))
        out = LinearTransform(dense).apply(evaluator, ct)
        assert out.num_limbs == ct.num_limbs - 1

    def test_no_rescale_keeps_level(self, dense, encryptor, evaluator, rng):
        ct = encryptor.encrypt_values(rng.normal(size=8))
        out = LinearTransform(dense).apply(evaluator, ct, rescale=False)
        assert out.num_limbs == ct.num_limbs

    def test_unknown_method_rejected(self, dense, encryptor, evaluator):
        ct = encryptor.encrypt_values([0.0] * 8)
        with pytest.raises(ValueError):
            LinearTransform(dense).apply(evaluator, ct, method="turbo")

    def test_all_zero_transform_rejected(self, encryptor, evaluator):
        ct = encryptor.encrypt_values([0.0] * 8)
        with pytest.raises(ValueError):
            LinearTransform(np.zeros((8, 8))).apply(evaluator, ct)

    def test_methods_agree(self, dense, encryptor, decryptor, evaluator, rng):
        z = rng.normal(size=8) + 1j * rng.normal(size=8)
        ct = encryptor.encrypt_values(z)
        lt = LinearTransform(dense)
        results = [
            decryptor.decrypt_values(lt.apply(evaluator, ct, method=m))
            for m in ("naive", "hoisted", "bsgs")
        ]
        for other in results[1:]:
            assert np.max(np.abs(results[0] - other)) < 1e-3


class TestRequiredRotations:
    def test_naive_lists_diagonal_indices(self, rng):
        m = rng.normal(size=(8, 8))
        assert LinearTransform(m).required_rotations("naive") == list(range(1, 8))

    def test_bsgs_needs_fewer_keys_for_dense(self, rng):
        m = rng.normal(size=(8, 8))
        lt = LinearTransform(m)
        assert len(lt.required_rotations("bsgs")) <= len(
            lt.required_rotations("naive")
        )

    def test_conjugation_flag(self, rng):
        m = rng.normal(size=(8, 8))
        assert not LinearTransform(m).needs_conjugation()
        assert LinearTransform(m, m).needs_conjugation()
