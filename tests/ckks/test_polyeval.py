import numpy as np
import pytest

from repro.ckks.polyeval import (
    ChebyshevEvaluator,
    _divide_by_t_s,
    chebyshev_fit,
    chebyshev_value,
)


class TestChebyshevFit:
    def test_fits_polynomial_exactly(self):
        coeffs = chebyshev_fit(lambda x: x**2, 4, (-2.0, 2.0))
        xs = np.linspace(-2, 2, 33)
        assert np.max(np.abs(chebyshev_value(coeffs, xs, (-2, 2)) - xs**2)) < 1e-12

    def test_fits_sine_accurately(self):
        interval = (-4.5, 4.5)
        coeffs = chebyshev_fit(np.sin, 40, interval)
        xs = np.linspace(*interval, 101)
        assert np.max(np.abs(chebyshev_value(coeffs, xs, interval) - np.sin(xs))) < 1e-9

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            chebyshev_fit(np.sin, 8, (1.0, -1.0))


class TestChebyshevDivision:
    @pytest.mark.parametrize("degree,s", [(7, 4), (8, 4), (15, 8), (10, 8)])
    def test_split_identity(self, degree, s):
        rng = np.random.default_rng(degree * 31 + s)
        coeffs = rng.normal(size=degree + 1)
        hi, lo = _divide_by_t_s(list(coeffs), s)
        ts = np.polynomial.chebyshev.Chebyshev.basis(s)
        original = np.polynomial.chebyshev.Chebyshev(coeffs)
        rebuilt = np.polynomial.chebyshev.Chebyshev(hi) * ts + np.polynomial.chebyshev.Chebyshev(lo)
        xs = np.linspace(-1, 1, 41)
        assert np.max(np.abs(original(xs) - rebuilt(xs))) < 1e-10

    def test_rejects_oversized_degree(self):
        with pytest.raises(ValueError):
            _divide_by_t_s([1.0] * 20, 4)

    def test_lo_degree_bound(self):
        hi, lo = _divide_by_t_s([1.0] * 9, 4)
        assert len(lo) == 4
        assert len(hi) == 5


@pytest.fixture(scope="module")
def deep_env():
    """Context with Delta ~= q so deep circuits keep a stable scale."""
    from repro.params.presets import toy_params
    from repro.ckks import CkksContext, Decryptor, Encryptor, Evaluator, KeyGenerator

    ctx = CkksContext(
        toy_params(log_n=4, log_q=30, max_limbs=10, dnum=3),
        scale_bits=30,
        seed=13,
    )
    kg = KeyGenerator(ctx)
    return {
        "encryptor": Encryptor(ctx, secret_key=kg.secret_key),
        "decryptor": Decryptor(ctx, kg.secret_key),
        "evaluator": Evaluator(ctx, relin_key=kg.relinearization_key()),
    }


class TestHomomorphicEvaluation:
    @pytest.fixture()
    def evaluator(self, deep_env):
        return deep_env["evaluator"]

    @pytest.fixture()
    def decryptor(self, deep_env):
        return deep_env["decryptor"]

    @pytest.fixture()
    def setup(self, deep_env, rng):
        xs = rng.uniform(-0.9, 0.9, size=8)
        ct = deep_env["encryptor"].encrypt_values(xs)
        return xs, ct

    def test_evaluates_cubic(self, setup, evaluator, decryptor):
        xs, ct = setup
        interval = (-1.0, 1.0)
        coeffs = chebyshev_fit(lambda x: x**3 - 0.5 * x, 3, interval)
        cheb = ChebyshevEvaluator(evaluator, ct, interval, max_degree=3)
        got = decryptor.decrypt_values(cheb.evaluate(coeffs)).real
        assert np.max(np.abs(got - (xs**3 - 0.5 * xs))) < 5e-3

    def test_evaluates_exp_degree_seven(self, setup, evaluator, decryptor):
        xs, ct = setup
        interval = (-1.0, 1.0)
        coeffs = chebyshev_fit(np.exp, 7, interval)
        cheb = ChebyshevEvaluator(evaluator, ct, interval, max_degree=7)
        got = decryptor.decrypt_values(cheb.evaluate(coeffs)).real
        assert np.max(np.abs(got - np.exp(xs))) < 2e-2

    def test_shared_basis_reuse(self, setup, evaluator, decryptor):
        xs, ct = setup
        interval = (-1.0, 1.0)
        cheb = ChebyshevEvaluator(evaluator, ct, interval, max_degree=3)
        got_sq = decryptor.decrypt_values(
            cheb.evaluate(chebyshev_fit(lambda x: x**2, 3, interval))
        ).real
        got_cube = decryptor.decrypt_values(
            cheb.evaluate(chebyshev_fit(lambda x: x**3, 3, interval))
        ).real
        assert np.max(np.abs(got_sq - xs**2)) < 5e-3
        assert np.max(np.abs(got_cube - xs**3)) < 5e-3

    def test_complex_coefficient_factor(self, setup, evaluator, decryptor):
        xs, ct = setup
        interval = (-1.0, 1.0)
        coeffs = chebyshev_fit(lambda x: x, 1, interval) * 1j
        cheb = ChebyshevEvaluator(evaluator, ct, interval, max_degree=1)
        got = decryptor.decrypt_values(cheb.evaluate(coeffs))
        assert np.max(np.abs(got - 1j * xs)) < 5e-3

    def test_constant_series(self, setup, evaluator, decryptor):
        xs, ct = setup
        cheb = ChebyshevEvaluator(evaluator, ct, (-1.0, 1.0), max_degree=1)
        got = decryptor.decrypt_values(cheb.evaluate([0.75])).real
        assert np.max(np.abs(got - 0.75)) < 5e-3

    def test_degree_overflow_rejected(self, setup, evaluator):
        _, ct = setup
        cheb = ChebyshevEvaluator(evaluator, ct, (-1.0, 1.0), max_degree=3)
        with pytest.raises(ValueError):
            cheb.evaluate([0.0] * 10)

    def test_missing_power_rejected(self, setup, evaluator):
        _, ct = setup
        cheb = ChebyshevEvaluator(evaluator, ct, (-1.0, 1.0), max_degree=3)
        with pytest.raises(ValueError):
            cheb.power(17)

    def test_bad_max_degree_rejected(self, setup, evaluator):
        _, ct = setup
        with pytest.raises(ValueError):
            ChebyshevEvaluator(evaluator, ct, (-1.0, 1.0), max_degree=0)
