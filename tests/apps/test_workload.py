import pytest

from repro.params import BASELINE_JUNG, MAD_OPTIMAL
from repro.perf import MADConfig
from repro.apps import ApplicationWorkload, workload_cost


class TestWorkloadValidation:
    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            ApplicationWorkload(name="bad", mults=-1)

    def test_rejects_bad_level_fraction(self):
        with pytest.raises(ValueError):
            ApplicationWorkload(name="bad", level_fraction=0.0)
        with pytest.raises(ValueError):
            ApplicationWorkload(name="bad", level_fraction=1.5)


class TestWorkloadCost:
    @pytest.fixture(scope="class")
    def simple(self):
        return ApplicationWorkload(
            name="simple", mults=10, rotates=20, adds=30, bootstraps=2
        )

    def test_cost_splits_compute_and_bootstrap(self, simple):
        cost = workload_cost(simple, BASELINE_JUNG)
        assert cost.compute.ops.total > 0
        assert cost.bootstrap.ops.total > 0
        assert cost.total.ops.total == (
            cost.compute.ops.total + cost.bootstrap.ops.total
        )

    def test_no_bootstraps_means_no_bootstrap_cost(self):
        wl = ApplicationWorkload(name="flat", mults=5)
        cost = workload_cost(wl, BASELINE_JUNG)
        assert cost.bootstrap.ops.total == 0
        assert cost.bootstrap_fraction == 0.0

    def test_bootstrap_dominates_with_few_ops(self):
        """The paper: bootstrapping consumes ~80% of ML application time."""
        wl = ApplicationWorkload(
            name="ml-ish", mults=20, rotates=40, adds=60, bootstraps=10
        )
        cost = workload_cost(wl, BASELINE_JUNG)
        assert cost.bootstrap_fraction > 0.5

    def test_mad_config_reduces_total_traffic(self, simple):
        base = workload_cost(simple, BASELINE_JUNG, MADConfig.none())
        optimized = workload_cost(simple, MAD_OPTIMAL, MADConfig.all())
        assert optimized.total.traffic.total < base.total.traffic.total

    def test_scales_with_counts(self):
        small = ApplicationWorkload(name="s", mults=5, bootstraps=1)
        large = ApplicationWorkload(name="l", mults=50, bootstraps=1)
        c_small = workload_cost(small, BASELINE_JUNG)
        c_large = workload_cost(large, BASELINE_JUNG)
        assert c_large.compute.ops.total > c_small.compute.ops.total
        assert c_large.bootstrap.ops.total == c_small.bootstrap.ops.total
