import pytest

from repro.params import BASELINE_JUNG, MAD_OPTIMAL
from repro.perf import MADConfig
from repro.apps import helr_training, resnet20_inference, workload_cost
from repro.apps.helr import iterations_per_bootstrap


class TestHelr:
    def test_bootstrap_every_three_iterations_at_mad_params(self):
        """The paper: 'with our optimal parameter set, we need to perform
        bootstrapping after every three training iterations.'"""
        assert iterations_per_bootstrap(MAD_OPTIMAL) == 3

    def test_bootstrap_cadence_scales_with_level_budget(self):
        assert iterations_per_bootstrap(BASELINE_JUNG) >= 3

    def test_workload_counts_scale_with_iterations(self):
        short = helr_training(MAD_OPTIMAL, iterations=3)
        long = helr_training(MAD_OPTIMAL, iterations=30)
        assert long.mults == 10 * short.mults
        assert long.bootstraps == 10 * short.bootstraps

    def test_thirty_iterations_need_ten_bootstraps(self):
        wl = helr_training(MAD_OPTIMAL, iterations=30)
        assert wl.bootstraps == 10

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            helr_training(MAD_OPTIMAL, iterations=0)

    def test_rotations_grow_with_dimensions(self):
        small = helr_training(MAD_OPTIMAL, iterations=1, features=64, batch=256)
        large = helr_training(MAD_OPTIMAL, iterations=1, features=1024, batch=4096)
        assert large.rotates > small.rotates

    def test_training_is_bootstrap_dominated(self):
        wl = helr_training(MAD_OPTIMAL, iterations=30)
        cost = workload_cost(wl, MAD_OPTIMAL, MADConfig.all())
        assert cost.bootstrap_fraction > 0.5


class TestResNet20:
    def test_structure_constants(self):
        wl = resnet20_inference(MAD_OPTIMAL)
        assert wl.bootstraps == 38  # 19 ReLUs x 2 packs
        assert wl.mults == 190  # 19 ReLUs x 10 mults

    def test_inference_is_bootstrap_dominated(self):
        """ResNet-20 speedups in Fig. 6 track bootstrap speedups because
        bootstrapping dominates end-to-end inference."""
        wl = resnet20_inference(MAD_OPTIMAL)
        cost = workload_cost(wl, MAD_OPTIMAL, MADConfig.all())
        assert cost.bootstrap_fraction > 0.6

    def test_heavier_than_lr_training(self):
        lr = workload_cost(helr_training(MAD_OPTIMAL, 30), MAD_OPTIMAL)
        resnet = workload_cost(resnet20_inference(MAD_OPTIMAL), MAD_OPTIMAL)
        assert resnet.total.traffic.total > lr.total.traffic.total

    def test_mad_improves_inference(self):
        wl = resnet20_inference(MAD_OPTIMAL)
        base = workload_cost(wl, BASELINE_JUNG, MADConfig.none())
        optimized = workload_cost(wl, MAD_OPTIMAL, MADConfig.all())
        assert (
            optimized.total.traffic.total < 0.5 * base.total.traffic.total
        )
