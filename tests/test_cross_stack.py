"""Cross-stack validation: the functional layer must *execute* the same
operation structure the performance model *counts*.

We instrument the NTT engine, run functional CKKS operations at toy
parameters, and check the number of forward/inverse NTT passes against the
closed forms the cost model is built on.  This is the strongest link
between the two halves of the library: if the model assumed an operation
structure the implementation doesn't have, these tests break.
"""

import contextlib

import numpy as np
import pytest

from repro.kernels.ntt import BatchNttKernel
from repro.numth.ntt import NttContext
from repro.params import toy_params
from repro.ckks import (
    CkksContext,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
)


@contextlib.contextmanager
def ntt_counter(monkeypatch):
    """Count forward/inverse NTT limb-passes process-wide.

    Both engines are instrumented in the same unit — one transformed
    limb — so the closed forms hold whichever path the ring layer picks:
    the pure-Python oracle does one call per limb, the batched int64
    kernel one call per basis (counted at ``num_limbs`` passes).
    """
    counts = {"forward": 0, "inverse": 0}
    original_forward = NttContext.forward
    original_inverse = NttContext.inverse
    kernel_forward = BatchNttKernel.forward
    kernel_inverse = BatchNttKernel.inverse

    def counting_forward(self, coeffs):
        counts["forward"] += 1
        return original_forward(self, coeffs)

    def counting_inverse(self, evals):
        counts["inverse"] += 1
        return original_inverse(self, evals)

    def counting_kernel_forward(self, rows):
        counts["forward"] += self.num_limbs
        return kernel_forward(self, rows)

    def counting_kernel_inverse(self, rows):
        counts["inverse"] += self.num_limbs
        return kernel_inverse(self, rows)

    monkeypatch.setattr(NttContext, "forward", counting_forward)
    monkeypatch.setattr(NttContext, "inverse", counting_inverse)
    monkeypatch.setattr(BatchNttKernel, "forward", counting_kernel_forward)
    monkeypatch.setattr(BatchNttKernel, "inverse", counting_kernel_inverse)
    try:
        yield counts
    finally:
        monkeypatch.undo()


@pytest.fixture(scope="module")
def env():
    params = toy_params(log_n=4, log_q=30, max_limbs=6, dnum=3)
    ctx = CkksContext(params, seed=3)
    kg = KeyGenerator(ctx)
    return {
        "params": params,
        "ctx": ctx,
        "enc": Encryptor(ctx, secret_key=kg.secret_key),
        "dec": Decryptor(ctx, kg.secret_key),
        "ev": Evaluator(
            ctx,
            relin_key=kg.relinearization_key(),
            rotation_keys={s: kg.rotation_key(s) for s in (1, 2, 3)},
        ),
    }


def _keyswitch_ntt_counts(params, limbs):
    """Closed-form NTT passes of one KeySwitch at ``limbs`` limbs.

    Decomp+ModUp: each digit of size d is iNTT'd (d passes) and extended to
    ``limbs + k`` limbs (``limbs + k - d`` forward passes).  The ModDown
    pair: ``k`` inverse + ``limbs`` forward passes per polynomial.
    """
    k = params.num_special_limbs
    digit_sizes = []
    remaining = limbs
    while remaining > 0:
        digit_sizes.append(min(params.alpha, remaining))
        remaining -= params.alpha
    inverse = sum(digit_sizes) + 2 * k
    forward = sum(limbs + k - d for d in digit_sizes) + 2 * limbs
    return forward, inverse


class TestRotateStructure:
    def test_ntt_passes_match_model(self, env, monkeypatch):
        params = env["params"]
        limbs = params.max_limbs
        ct = env["enc"].encrypt_values([0.1] * 8)
        with ntt_counter(monkeypatch) as counts:
            env["ev"].rotate(ct, 1)
        forward, inverse = _keyswitch_ntt_counts(params, limbs)
        # Rotate = automorph (0 NTTs) + KeySwitch of c1.
        assert counts["inverse"] == inverse
        assert counts["forward"] == forward


class TestMultStructure:
    def test_standard_mult_ntt_passes(self, env, monkeypatch):
        params = env["params"]
        limbs = params.max_limbs
        ct1 = env["enc"].encrypt_values([0.1] * 8)
        ct2 = env["enc"].encrypt_values([0.2] * 8)
        with ntt_counter(monkeypatch) as counts:
            env["ev"].mult(ct1, ct2)
        ks_forward, ks_inverse = _keyswitch_ntt_counts(params, limbs)
        # Mult adds a Rescale of both polynomials: per polynomial, 1 inverse
        # (the dropped limb) + (limbs - 1) forward (its images).
        assert counts["inverse"] == ks_inverse + 2
        assert counts["forward"] == ks_forward + 2 * (limbs - 1)

    def test_merged_mod_down_saves_ntt_passes(self, env, monkeypatch):
        """Fig. 4: the merged ModDown eliminates the separate rescale pass."""
        ct1 = env["enc"].encrypt_values([0.1] * 8)
        ct2 = env["enc"].encrypt_values([0.2] * 8)
        with ntt_counter(monkeypatch) as standard:
            env["ev"].mult(ct1, ct2)
        standard_total = standard["forward"] + standard["inverse"]
        with ntt_counter(monkeypatch) as merged:
            env["ev"].mult(ct1, ct2, merged_mod_down=True)
        merged_total = merged["forward"] + merged["inverse"]
        assert merged_total < standard_total


class TestHoistingStructure:
    def test_hoisted_rotations_share_mod_up(self, env, monkeypatch):
        """Fig. 5: k hoisted rotations perform the Decomp+ModUp NTT work
        once, then only the per-rotation ModDown passes."""
        params = env["params"]
        limbs = params.max_limbs
        k = params.num_special_limbs
        ct = env["enc"].encrypt_values([0.1] * 8)
        steps = [1, 2, 3]

        with ntt_counter(monkeypatch) as hoisted:
            env["ev"].rotations_hoisted(ct, steps)
        with ntt_counter(monkeypatch) as single:
            env["ev"].rotate(ct, 1)

        # Sequential: 3x full KeySwitch.  Hoisted: 1x (Decomp+ModUp) +
        # 3x ModDown pair (k inverse + limbs forward per polynomial).
        sequential_total = 3 * (single["forward"] + single["inverse"])
        expected_hoisted = (
            single["forward"]
            + single["inverse"]
            + 2 * (2 * (k + limbs))  # two extra rotations' ModDown pairs
        )
        hoisted_total = hoisted["forward"] + hoisted["inverse"]
        assert hoisted_total == expected_hoisted
        assert hoisted_total < sequential_total

    def test_hoisting_savings_grow_with_rotation_count(self, env, monkeypatch):
        ct = env["enc"].encrypt_values([0.1] * 8)
        with ntt_counter(monkeypatch) as two:
            env["ev"].rotations_hoisted(ct, [1, 2])
        with ntt_counter(monkeypatch) as three:
            env["ev"].rotations_hoisted(ct, [1, 2, 3])
        params = env["params"]
        per_extra = 2 * (params.num_special_limbs + params.max_limbs)
        assert (
            three["forward"] + three["inverse"]
            - (two["forward"] + two["inverse"])
            == per_extra
        )


class TestEncryptionStructure:
    def test_fresh_encryption_ntt_budget(self, env, monkeypatch):
        """Symmetric encryption: NTT the error and message polynomials."""
        limbs = env["params"].max_limbs
        with ntt_counter(monkeypatch) as counts:
            env["enc"].encrypt_values([0.0] * 8)
        # e and m are built in coefficient form and NTT'd over every limb;
        # `a` is sampled directly in the evaluation domain.
        assert counts["forward"] == 2 * limbs
        assert counts["inverse"] == 0
