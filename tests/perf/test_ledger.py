import pytest

from repro.params import BASELINE_JUNG
from repro.perf import BootstrapModel, CostReport, MADConfig
from repro.perf.events import MemTraffic, OpCount
from repro.perf.ledger import CostLedger


class TestCostLedger:
    def test_total_sums_entries(self):
        ledger = CostLedger()
        ledger.add("a", CostReport(OpCount(mults=10), MemTraffic(ct_read=100)))
        ledger.add("b", CostReport(OpCount(adds=5), MemTraffic(ct_write=50)))
        assert ledger.total.ops.total == 15
        assert ledger.total.traffic.total == 150
        assert len(ledger) == 2

    def test_by_label_merges(self):
        ledger = CostLedger()
        ledger.add("x", CostReport(OpCount(mults=1)))
        ledger.add("x", CostReport(OpCount(mults=2)))
        assert ledger.by_label()["x"].ops.mults == 3

    def test_fractions(self):
        ledger = CostLedger()
        ledger.add("a", CostReport(OpCount(mults=30), MemTraffic(ct_read=10)))
        ledger.add("b", CostReport(OpCount(mults=70), MemTraffic(ct_read=90)))
        assert ledger.ops_fraction("a") == pytest.approx(0.3)
        assert ledger.traffic_fraction("b") == pytest.approx(0.9)

    def test_unknown_label_raises(self):
        ledger = CostLedger()
        ledger.add("a", CostReport(OpCount(mults=1), MemTraffic(ct_read=1)))
        with pytest.raises(KeyError):
            ledger.traffic_fraction("zzz")

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            CostLedger().add("", CostReport())

    def test_render_contains_labels_and_total(self):
        ledger = CostLedger()
        ledger.add("widget", CostReport(OpCount(mults=10**9)))
        text = ledger.render()
        assert "widget" in text and "Total" in text


class TestBootstrapLedger:
    @pytest.fixture(scope="class")
    def ledger(self):
        return BootstrapModel(BASELINE_JUNG, MADConfig.none()).ledger()

    def test_matches_total_cost(self, ledger):
        total = BootstrapModel(BASELINE_JUNG, MADConfig.none()).total_cost()
        assert ledger.total == total

    def test_expected_components(self, ledger):
        labels = set(ledger.by_label())
        assert labels == {
            "ModRaise",
            "CoeffToSlot",
            "EvalMod:Mult",
            "EvalMod:PtMult",
            "EvalMod:Add",
            "SlotToCoeff",
        }

    def test_entry_count(self, ledger):
        # 1 ModRaise + fftIter C2S + 3 per EvalMod level + fftIter S2C.
        p = BASELINE_JUNG
        assert len(ledger) == 1 + p.fft_iter + 3 * p.eval_mod_depth + p.fft_iter

    def test_dft_and_evalmod_dominate(self, ledger):
        assert ledger.traffic_fraction("ModRaise") < 0.01
        dft = ledger.traffic_fraction("CoeffToSlot") + ledger.traffic_fraction(
            "SlotToCoeff"
        )
        assert dft > 0.4

    def test_fractions_sum_to_one(self, ledger):
        total = sum(
            ledger.traffic_fraction(label) for label in ledger.by_label()
        )
        assert total == pytest.approx(1.0)
