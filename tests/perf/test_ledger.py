import pytest

from repro.params import BASELINE_JUNG
from repro.perf import BootstrapModel, CostReport, MADConfig
from repro.perf.events import MemTraffic, OpCount
from repro.perf.ledger import CostLedger


class TestCostLedger:
    def test_total_sums_entries(self):
        ledger = CostLedger()
        ledger.add("a", CostReport(OpCount(mults=10), MemTraffic(ct_read=100)))
        ledger.add("b", CostReport(OpCount(adds=5), MemTraffic(ct_write=50)))
        assert ledger.total.ops.total == 15
        assert ledger.total.traffic.total == 150
        assert len(ledger) == 2

    def test_by_label_merges(self):
        ledger = CostLedger()
        ledger.add("x", CostReport(OpCount(mults=1)))
        ledger.add("x", CostReport(OpCount(mults=2)))
        assert ledger.by_label()["x"].ops.mults == 3

    def test_fractions(self):
        ledger = CostLedger()
        ledger.add("a", CostReport(OpCount(mults=30), MemTraffic(ct_read=10)))
        ledger.add("b", CostReport(OpCount(mults=70), MemTraffic(ct_read=90)))
        assert ledger.ops_fraction("a") == pytest.approx(0.3)
        assert ledger.traffic_fraction("b") == pytest.approx(0.9)

    def test_unknown_label_raises(self):
        ledger = CostLedger()
        ledger.add("a", CostReport(OpCount(mults=1), MemTraffic(ct_read=1)))
        with pytest.raises(KeyError):
            ledger.traffic_fraction("zzz")

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            CostLedger().add("", CostReport())

    def test_render_contains_labels_and_total(self):
        ledger = CostLedger()
        ledger.add("widget", CostReport(OpCount(mults=10**9)))
        text = ledger.render()
        assert "widget" in text and "Total" in text


class TestBootstrapLedger:
    @pytest.fixture(scope="class")
    def ledger(self):
        return BootstrapModel(BASELINE_JUNG, MADConfig.none()).ledger()

    def test_matches_total_cost(self, ledger):
        total = BootstrapModel(BASELINE_JUNG, MADConfig.none()).total_cost()
        assert ledger.total == total

    def test_expected_components(self, ledger):
        labels = set(ledger.by_label())
        assert labels == {
            "ModRaise",
            "CoeffToSlot",
            "EvalMod:Mult",
            "EvalMod:PtMult",
            "EvalMod:Add",
            "SlotToCoeff",
        }

    def test_entry_count(self, ledger):
        # 1 ModRaise + fftIter C2S + 3 per EvalMod level + fftIter S2C.
        p = BASELINE_JUNG
        assert len(ledger) == 1 + p.fft_iter + 3 * p.eval_mod_depth + p.fft_iter

    def test_dft_and_evalmod_dominate(self, ledger):
        assert ledger.traffic_fraction("ModRaise") < 0.01
        dft = ledger.traffic_fraction("CoeffToSlot") + ledger.traffic_fraction(
            "SlotToCoeff"
        )
        assert dft > 0.4

    def test_fractions_sum_to_one(self, ledger):
        total = sum(
            ledger.traffic_fraction(label) for label in ledger.by_label()
        )
        assert total == pytest.approx(1.0)


class TestLedgerEdgeCases:
    def test_empty_ledger_total_is_zero_cost(self):
        assert CostLedger().total == CostReport()

    def test_unknown_label_raises_even_on_empty_ledger(self):
        with pytest.raises(KeyError):
            CostLedger().traffic_fraction("anything")
        with pytest.raises(KeyError):
            CostLedger().ops_fraction("anything")

    def test_known_label_with_zero_totals_is_zero_fraction(self):
        ledger = CostLedger()
        ledger.add("idle", CostReport())
        assert ledger.traffic_fraction("idle") == 0.0
        assert ledger.ops_fraction("idle") == 0.0

    def test_ops_fraction_unknown_label_raises(self):
        ledger = CostLedger()
        ledger.add("a", CostReport(OpCount(mults=1)))
        with pytest.raises(KeyError):
            ledger.ops_fraction("zzz")

    def test_repeated_labels_merge_in_fractions(self):
        ledger = CostLedger()
        ledger.add("x", CostReport(OpCount(mults=1), MemTraffic(ct_read=25)))
        ledger.add("y", CostReport(OpCount(mults=1), MemTraffic(ct_read=50)))
        ledger.add("x", CostReport(OpCount(mults=2), MemTraffic(ct_read=25)))
        assert ledger.traffic_fraction("x") == pytest.approx(0.5)
        assert ledger.ops_fraction("x") == pytest.approx(0.75)


class TestLedgerRender:
    def test_fraction_columns_present(self):
        ledger = CostLedger()
        ledger.add("a", CostReport(OpCount(mults=3), MemTraffic(ct_read=10)))
        ledger.add("b", CostReport(OpCount(mults=1), MemTraffic(ct_read=30)))
        text = ledger.render()
        header = text.splitlines()[0]
        assert "Ops%" in header and "GB%" in header
        assert "75.0%" in text and "25.0%" in text

    def test_long_labels_are_truncated_to_column_width(self):
        ledger = CostLedger()
        long_label = "a-very-long-component-label-over-24-chars"
        ledger.add(long_label, CostReport(OpCount(mults=1)))
        ledger.add("short", CostReport(OpCount(mults=1)))
        lines = ledger.render().splitlines()
        rule = lines[1]
        row = next(line for line in lines if "…" in line)
        assert long_label not in row
        assert len(row) == len(rule)

    def test_columns_stay_aligned(self):
        ledger = CostLedger()
        ledger.add("x" * 40, CostReport(OpCount(mults=1), MemTraffic(ct_read=1)))
        ledger.add("y", CostReport(OpCount(adds=2), MemTraffic(ct_write=2)))
        lines = ledger.render().splitlines()
        gops_col = lines[0].index("Gops")
        for line in lines[2:-2]:
            # the Gops column begins right-aligned under the header
            assert line[: gops_col + 4].strip()

    def test_empty_ledger_renders_zero_totals(self):
        text = CostLedger().render()
        assert "Total" in text
        assert "0.0%" in text
