import pytest

from repro.params import BASELINE_JUNG
from repro.perf import CacheModel, MADConfig, PrimitiveCosts

#: Table 4 of the paper: (giga-ops, DRAM GB) at N=2^17, l=35, dnum=3,
#: baseline small cache.  Our counting conventions reproduce each row to
#: within this tolerance.
TABLE4 = {
    "pt_add": (0.0046, 0.1101),
    "add": (0.0092, 0.2202),
    "pt_mult": (0.2747, 0.3282),
    "decomp": (0.0092, 0.0734),
    "mod_up": (0.2847, 0.1510),
    "ksk_inner_product": (0.0629, 0.4530),
    "mod_down": (0.3000, 0.1877),
    "mult": (1.8333, 1.9293),
    "automorph": (0.0, 0.1468),
    "rotate": (1.5310, 1.5645),
    "conjugate": (1.5310, 1.5645),
}

TOLERANCE = 0.22  # relative


@pytest.fixture(scope="module")
def baseline():
    return PrimitiveCosts(BASELINE_JUNG, MADConfig.none())


@pytest.fixture(scope="module")
def optimized():
    return PrimitiveCosts(BASELINE_JUNG, MADConfig.all())


def _cost(costs, name):
    method = getattr(costs, name)
    if name == "mod_up":
        return method(35, 12)
    return method(35)


class TestTable4Reproduction:
    @pytest.mark.parametrize("name", sorted(TABLE4))
    def test_ops_match_paper(self, baseline, name):
        paper_gops, _ = TABLE4[name]
        ours = _cost(baseline, name).giga_ops()
        if paper_gops == 0:
            assert ours == 0
        else:
            assert ours == pytest.approx(paper_gops, rel=TOLERANCE)

    @pytest.mark.parametrize("name", sorted(TABLE4))
    def test_traffic_matches_paper(self, baseline, name):
        _, paper_gb = TABLE4[name]
        ours = _cost(baseline, name).gigabytes()
        assert ours == pytest.approx(paper_gb, rel=TOLERANCE)

    @pytest.mark.parametrize("name", sorted(TABLE4))
    def test_arithmetic_intensity_below_two(self, baseline, name):
        """Every primitive is memory-bound-ish: AI < 2 ops/byte (Table 4)."""
        report = _cost(baseline, name)
        assert report.arithmetic_intensity < 2.0

    def test_rotate_equals_conjugate(self, baseline):
        assert _cost(baseline, "rotate") == _cost(baseline, "conjugate")


class TestFigure1RotateCaching:
    """Fig. 1: the Automorph+Decomp+iNTT prefix of Rotate drops from
    105 reads + 105 writes to 35 reads + 35 writes with O(1) caching."""

    def test_naive_prefix_transfer_count(self):
        costs = PrimitiveCosts(BASELINE_JUNG, MADConfig.none())
        limb = BASELINE_JUNG.limb_bytes
        # c1-side prefix: automorph (l r/w) + decomp (l r/w) + iNTT (l r/w).
        naive = costs.rotate(35).traffic
        o1 = PrimitiveCosts(BASELINE_JUNG, MADConfig(cache_o1=True)).rotate(35).traffic
        saved_limbs = (naive.total - o1.total) / limb
        # Fig. 1 claims 140 limb transfers saved on the fused prefix; our
        # model adds further fusions (ModDown output streaming), so at
        # least 140 must disappear.
        assert saved_limbs >= 140

    def test_o1_saves_roughly_124_mb_on_prefix(self):
        # "Our approach avoids ... 124 MB of data transfer for a ciphertext."
        naive = PrimitiveCosts(BASELINE_JUNG, MADConfig.none()).rotate(35)
        o1 = PrimitiveCosts(BASELINE_JUNG, MADConfig(cache_o1=True)).rotate(35)
        saved_mb = (naive.traffic.total - o1.traffic.total) / 1e6
        assert 124 <= saved_mb <= 260


class TestOptimizationInvariants:
    @pytest.mark.parametrize(
        "name", ["pt_mult", "mult", "rotate", "mod_up", "mod_down"]
    )
    def test_caching_never_increases_traffic(self, name):
        base = PrimitiveCosts(BASELINE_JUNG, MADConfig.none())
        cached = PrimitiveCosts(BASELINE_JUNG, MADConfig.caching_only())
        assert _cost(cached, name).traffic.total <= _cost(base, name).traffic.total

    @pytest.mark.parametrize(
        "name", ["pt_add", "add", "pt_mult", "rotate", "mod_up", "mod_down"]
    )
    def test_caching_preserves_op_counts(self, name):
        """Section 3.1: 'the number of compute operations remains constant'."""
        base = PrimitiveCosts(BASELINE_JUNG, MADConfig.none())
        cached = PrimitiveCosts(BASELINE_JUNG, MADConfig.caching_only())
        assert _cost(cached, name).ops == _cost(base, name).ops

    def test_mod_down_merge_reduces_mult_ops(self):
        base = PrimitiveCosts(
            BASELINE_JUNG, MADConfig.caching_only()
        ).mult(35)
        merged = PrimitiveCosts(
            BASELINE_JUNG, MADConfig.caching_only().with_(mod_down_merge=True)
        ).mult(35)
        assert merged.ops.total < base.ops.total

    def test_key_compression_halves_key_reads(self):
        base = PrimitiveCosts(BASELINE_JUNG, MADConfig.none())
        compressed = PrimitiveCosts(
            BASELINE_JUNG, MADConfig(key_compression=True)
        )
        assert (
            compressed.ksk_inner_product(35).traffic.key_read * 2
            == base.ksk_inner_product(35).traffic.key_read
        )

    def test_key_compression_only_touches_key_stream(self):
        base = PrimitiveCosts(BASELINE_JUNG, MADConfig.none()).rotate(35)
        compressed = PrimitiveCosts(
            BASELINE_JUNG, MADConfig(key_compression=True)
        ).rotate(35)
        assert compressed.traffic.ct_read == base.traffic.ct_read
        assert compressed.traffic.ct_write == base.traffic.ct_write
        assert compressed.traffic.key_read < base.traffic.key_read

    def test_automorph_costs_zero_ops(self, baseline):
        assert baseline.automorph(35).ops.total == 0

    def test_cache_disables_unsupported_flags(self):
        # A 6 MB memory cannot run the O(alpha) optimization even if asked.
        costs = PrimitiveCosts(
            BASELINE_JUNG, MADConfig.all(), CacheModel.from_mb(6.5)
        )
        assert not costs.config.cache_alpha
        assert costs.config.cache_beta

    def test_costs_scale_with_level(self, baseline):
        assert (
            baseline.rotate(20).traffic.total < baseline.rotate(35).traffic.total
        )
        assert baseline.rotate(20).ops.total < baseline.rotate(35).ops.total


class TestValidationPaths:
    def test_limb_bounds(self, baseline):
        with pytest.raises(ValueError):
            baseline.add(0)
        with pytest.raises(ValueError):
            baseline.add(36)

    def test_rescale_needs_two_limbs(self, baseline):
        with pytest.raises(ValueError):
            baseline.rescale(1)

    def test_mult_needs_two_limbs(self, baseline):
        with pytest.raises(ValueError):
            baseline.mult(1)

    def test_mod_up_digit_bounds(self, baseline):
        with pytest.raises(ValueError):
            baseline.mod_up(35, 0)
        with pytest.raises(ValueError):
            baseline.mod_up(35, 13)

    def test_mod_raise_bounds(self, baseline):
        with pytest.raises(ValueError):
            baseline.mod_raise(5, 5)
        with pytest.raises(ValueError):
            baseline.mod_raise(0, 35)
