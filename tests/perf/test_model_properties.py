"""Property-based invariants of the performance model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.params import BASELINE_JUNG, CkksParams
from repro.perf import BootstrapModel, MADConfig, PrimitiveCosts

_CACHING_FLAGS = ("cache_o1", "cache_beta", "cache_alpha")
_ALGO_FLAGS = ("mod_down_merge", "mod_down_hoist", "key_compression")


def _config(bits):
    flags = dict(zip(_CACHING_FLAGS + _ALGO_FLAGS, bits))
    flags["limb_reorder"] = flags["cache_alpha"] and bits[-1]
    # limb_reorder rides with cache_alpha; reuse the last bit for variety.
    return MADConfig(**flags)


_config_strategy = st.lists(st.booleans(), min_size=6, max_size=6).map(_config)
_limb_strategy = st.integers(2, 35)


class TestMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(limbs=st.integers(2, 34), config=_config_strategy)
    def test_costs_increase_with_limbs(self, limbs, config):
        costs = PrimitiveCosts(BASELINE_JUNG, config)
        for op in ("add", "pt_mult", "rotate", "mult"):
            lo = getattr(costs, op)(limbs)
            hi = getattr(costs, op)(limbs + 1)
            assert hi.ops.total >= lo.ops.total
            assert hi.traffic.total >= lo.traffic.total

    @settings(max_examples=25, deadline=None)
    @given(limbs=_limb_strategy, config=_config_strategy)
    def test_traffic_never_negative(self, limbs, config):
        costs = PrimitiveCosts(BASELINE_JUNG, config)
        for op in ("pt_add", "add", "pt_mult", "decomp", "rotate", "mult"):
            traffic = getattr(costs, op)(limbs).traffic
            assert traffic.ct_read >= 0
            assert traffic.ct_write >= 0
            assert traffic.key_read >= 0
            assert traffic.pt_read >= 0

    @settings(max_examples=25, deadline=None)
    @given(limbs=_limb_strategy, bits=st.lists(st.booleans(), min_size=3, max_size=3))
    def test_caching_flags_never_increase_traffic(self, limbs, bits):
        flags = dict(zip(_CACHING_FLAGS, bits))
        base = PrimitiveCosts(BASELINE_JUNG, MADConfig.none())
        cached = PrimitiveCosts(BASELINE_JUNG, MADConfig(**flags))
        for op in ("pt_mult", "rotate", "mult"):
            assert (
                getattr(cached, op)(limbs).traffic.total
                <= getattr(base, op)(limbs).traffic.total
            )

    @settings(max_examples=25, deadline=None)
    @given(limbs=_limb_strategy, bits=st.lists(st.booleans(), min_size=3, max_size=3))
    def test_caching_flags_preserve_ops(self, limbs, bits):
        flags = dict(zip(_CACHING_FLAGS, bits))
        base = PrimitiveCosts(BASELINE_JUNG, MADConfig.none())
        cached = PrimitiveCosts(BASELINE_JUNG, MADConfig(**flags))
        for op in ("pt_add", "add", "pt_mult", "rotate"):
            assert getattr(cached, op)(limbs).ops == getattr(base, op)(limbs).ops


class TestBootstrapInvariants:
    @settings(max_examples=10, deadline=None)
    @given(config=_config_strategy)
    def test_phases_sum_to_total(self, config):
        breakdown = BootstrapModel(BASELINE_JUNG, config).cost()
        summed_ops = sum(c.ops.total for c in breakdown.phases().values())
        assert summed_ops == breakdown.total.ops.total

    @settings(max_examples=10, deadline=None)
    @given(
        max_limbs=st.integers(25, 42),
        dnum=st.integers(2, 4),
    )
    def test_bootstrap_cost_scales_with_chain_length(self, max_limbs, dnum):
        def total(limbs):
            params = CkksParams(
                log_n=17, log_q=50, max_limbs=limbs, dnum=dnum, fft_iter=3
            )
            return BootstrapModel(params).total_cost()

        lo = total(max_limbs)
        hi = total(max_limbs + 2)
        assert hi.ops.total > lo.ops.total
        assert hi.traffic.total > lo.traffic.total

    @settings(max_examples=10, deadline=None)
    @given(config=_config_strategy)
    def test_key_compression_exactly_halves_keys(self, config):
        if config.key_compression:
            config = config.with_(key_compression=False)
        with_compression = config.with_(key_compression=True)
        base = BootstrapModel(BASELINE_JUNG, config).total_cost()
        compressed = BootstrapModel(BASELINE_JUNG, with_compression).total_cost()
        assert compressed.traffic.key_read * 2 == base.traffic.key_read
        assert compressed.ops == base.ops


class TestCostReportAlgebra:
    @settings(max_examples=25, deadline=None)
    @given(limbs=_limb_strategy, k=st.integers(0, 10))
    def test_scaling_matches_repetition(self, limbs, k):
        cost = PrimitiveCosts(BASELINE_JUNG).rotate(limbs)
        repeated = cost.scaled(k)
        assert repeated.ops.total == cost.ops.total * k
        assert repeated.traffic.total == cost.traffic.total * k
