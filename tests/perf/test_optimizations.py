import pytest

from repro.params import BASELINE_JUNG
from repro.perf import (
    ALGORITHMIC_LADDER,
    CACHING_LADDER,
    CacheModel,
    MADConfig,
)


class TestValidation:
    def test_limb_reorder_requires_alpha(self):
        with pytest.raises(ValueError):
            MADConfig(limb_reorder=True)

    def test_limb_reorder_with_alpha_ok(self):
        cfg = MADConfig(cache_alpha=True, limb_reorder=True)
        assert cfg.limb_reorder


class TestPresets:
    def test_none_has_nothing(self):
        cfg = MADConfig.none()
        assert not any(
            (
                cfg.cache_o1,
                cfg.cache_beta,
                cfg.cache_alpha,
                cfg.limb_reorder,
                cfg.mod_down_merge,
                cfg.mod_down_hoist,
                cfg.key_compression,
            )
        )

    def test_caching_only_excludes_algorithmic(self):
        cfg = MADConfig.caching_only()
        assert cfg.cache_o1 and cfg.cache_alpha and cfg.limb_reorder
        assert not cfg.mod_down_merge
        assert not cfg.mod_down_hoist
        assert not cfg.key_compression

    def test_all_enables_everything(self):
        cfg = MADConfig.all()
        assert all(
            (
                cfg.cache_o1,
                cfg.cache_beta,
                cfg.cache_alpha,
                cfg.limb_reorder,
                cfg.mod_down_merge,
                cfg.mod_down_hoist,
                cfg.key_compression,
            )
        )

    def test_with_changes_flags(self):
        cfg = MADConfig.none().with_(cache_o1=True)
        assert cfg.cache_o1
        assert not cfg.cache_beta


class TestForCache:
    def test_large_cache_enables_all(self):
        cfg = MADConfig.for_cache(CacheModel.from_mb(32), BASELINE_JUNG)
        assert cfg == MADConfig.all()

    def test_six_mb_stops_at_beta(self):
        cfg = MADConfig.for_cache(CacheModel.from_mb(6.5), BASELINE_JUNG)
        assert cfg.cache_o1 and cfg.cache_beta
        assert not cfg.cache_alpha and not cfg.limb_reorder
        # Algorithmic optimizations are memory-independent.
        assert cfg.mod_down_merge and cfg.mod_down_hoist and cfg.key_compression

    def test_tiny_cache_keeps_algorithmic_only(self):
        cfg = MADConfig.for_cache(CacheModel.from_mb(0.5), BASELINE_JUNG)
        assert not cfg.cache_o1
        assert cfg.key_compression


class TestLadders:
    def test_caching_ladder_is_cumulative(self):
        seen_enabled = set()
        for _, cfg in CACHING_LADDER:
            enabled = {
                name
                for name in (
                    "cache_o1",
                    "cache_beta",
                    "cache_alpha",
                    "limb_reorder",
                )
                if getattr(cfg, name)
            }
            assert seen_enabled <= enabled  # never loses an optimization
            seen_enabled = enabled
        assert seen_enabled == {
            "cache_o1",
            "cache_beta",
            "cache_alpha",
            "limb_reorder",
        }

    def test_caching_ladder_has_no_algorithmic_flags(self):
        for _, cfg in CACHING_LADDER:
            assert not cfg.mod_down_merge
            assert not cfg.mod_down_hoist
            assert not cfg.key_compression

    def test_algorithmic_ladder_builds_on_caching(self):
        for _, cfg in ALGORITHMIC_LADDER:
            assert cfg.cache_o1 and cfg.cache_alpha

    def test_algorithmic_ladder_ends_at_all(self):
        assert ALGORITHMIC_LADDER[-1][1] == MADConfig.all()
