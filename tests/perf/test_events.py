import pytest
from hypothesis import given, strategies as st

from repro.perf import CostReport, MemTraffic, OpCount


class TestOpCount:
    def test_total(self):
        assert OpCount(mults=3, adds=4).total == 7

    def test_addition(self):
        combined = OpCount(1, 2) + OpCount(10, 20)
        assert combined == OpCount(11, 22)

    def test_scaling(self):
        assert OpCount(3, 5).scaled(4) == OpCount(12, 20)

    def test_scaling_rejects_negative(self):
        with pytest.raises(ValueError):
            OpCount(1, 1).scaled(-1)

    @given(st.integers(0, 10**9), st.integers(0, 10**9), st.integers(0, 100))
    def test_scaling_matches_repeated_addition(self, m, a, k):
        base = OpCount(m, a)
        total = OpCount()
        for _ in range(k):
            total = total + base
        assert total == base.scaled(k)


class TestMemTraffic:
    def test_total_sums_streams(self):
        t = MemTraffic(ct_read=1, ct_write=2, key_read=4, pt_read=8)
        assert t.total == 15

    def test_addition_per_stream(self):
        t = MemTraffic(1, 2, 3, 4) + MemTraffic(10, 20, 30, 40)
        assert t == MemTraffic(11, 22, 33, 44)

    def test_scaling(self):
        assert MemTraffic(1, 2, 3, 4).scaled(2) == MemTraffic(2, 4, 6, 8)

    def test_scaling_rejects_negative(self):
        with pytest.raises(ValueError):
            MemTraffic(1, 0, 0, 0).scaled(-2)


class TestCostReport:
    def test_addition_combines_both(self):
        a = CostReport(OpCount(1, 1), MemTraffic(ct_read=10))
        b = CostReport(OpCount(2, 2), MemTraffic(ct_write=20))
        c = a + b
        assert c.ops == OpCount(3, 3)
        assert c.traffic == MemTraffic(ct_read=10, ct_write=20)

    def test_arithmetic_intensity(self):
        c = CostReport(OpCount(mults=50, adds=50), MemTraffic(ct_read=200))
        assert c.arithmetic_intensity == pytest.approx(0.5)

    def test_zero_traffic_edge_cases(self):
        assert CostReport().arithmetic_intensity == 0.0
        assert CostReport(OpCount(mults=1)).arithmetic_intensity == float("inf")

    def test_unit_helpers(self):
        c = CostReport(OpCount(mults=2 * 10**9), MemTraffic(ct_read=5 * 10**8))
        assert c.giga_ops() == pytest.approx(2.0)
        assert c.gigabytes() == pytest.approx(0.5)


class TestSumSupport:
    """``sum()`` starts from the int 0; ``__radd__`` makes it work."""

    def test_sum_op_counts(self):
        counts = [OpCount(1, 2), OpCount(3, 4), OpCount(5, 6)]
        assert sum(counts) == OpCount(9, 12)

    def test_sum_mem_traffic(self):
        traffic = [MemTraffic(1, 0, 0, 0), MemTraffic(0, 2, 3, 4)]
        assert sum(traffic) == MemTraffic(1, 2, 3, 4)

    def test_sum_cost_reports(self):
        costs = [
            CostReport(OpCount(mults=1), MemTraffic(ct_read=10)),
            CostReport(OpCount(adds=2), MemTraffic(key_read=20)),
        ]
        total = sum(costs)
        assert total.ops == OpCount(mults=1, adds=2)
        assert total.traffic == MemTraffic(ct_read=10, key_read=20)

    def test_sum_of_empty_sequence_is_int_zero(self):
        assert sum([]) == 0

    @pytest.mark.parametrize(
        "value",
        [OpCount(1, 2), MemTraffic(1, 2, 3, 4),
         CostReport(OpCount(1, 1), MemTraffic(ct_read=5))],
    )
    def test_zero_plus_value_is_identity(self, value):
        assert 0 + value == value

    @pytest.mark.parametrize(
        "value", [OpCount(), MemTraffic(), CostReport()]
    )
    def test_nonzero_int_addition_is_rejected(self, value):
        with pytest.raises(TypeError):
            1 + value
