import pytest

from repro.params import BASELINE_JUNG, MAD_OPTIMAL, CkksParams
from repro.perf import (
    ALGORITHMIC_LADDER,
    CACHING_LADDER,
    BootstrapModel,
    CacheModel,
    MADConfig,
)


@pytest.fixture(scope="module")
def baseline_total():
    return BootstrapModel(BASELINE_JUNG, MADConfig.none()).total_cost()


class TestBaselineCalibration:
    """Bootstrap totals against Table 4's last column (149.5 Gops,
    208.0 GB, AI 0.72) — reproduced within ~15%."""

    def test_ops_near_paper(self, baseline_total):
        assert baseline_total.giga_ops() == pytest.approx(149.5, rel=0.15)

    def test_traffic_near_paper(self, baseline_total):
        assert baseline_total.gigabytes() == pytest.approx(208.0, rel=0.15)

    def test_arithmetic_intensity_near_paper(self, baseline_total):
        assert baseline_total.arithmetic_intensity == pytest.approx(0.72, rel=0.1)

    def test_ai_below_one(self, baseline_total):
        """The headline observation: bootstrapping AI < 1 op/byte."""
        assert baseline_total.arithmetic_intensity < 1.0


class TestPhaseAccounting:
    def test_phases_sum_to_total(self):
        breakdown = BootstrapModel(BASELINE_JUNG).cost()
        total = breakdown.total
        summed = sum(
            (c for c in breakdown.phases().values()),
            start=type(total)(),
        )
        assert summed == total

    def test_dft_phases_dominate_traffic(self):
        breakdown = BootstrapModel(BASELINE_JUNG).cost()
        dft = (
            breakdown.coeff_to_slot.traffic.total
            + breakdown.slot_to_coeff.traffic.total
        )
        assert dft > breakdown.mod_raise.traffic.total

    def test_dft_diagonals_baseline(self):
        # n^(1/fftIter) = (2^16)^(1/3) ~= 41.
        assert BootstrapModel(BASELINE_JUNG).dft_diagonals == 41

    def test_dft_diagonals_mad_optimal(self):
        # (2^16)^(1/6) ~= 7.
        assert BootstrapModel(MAD_OPTIMAL).dft_diagonals == 7

    def test_unbootstrappable_params_rejected(self):
        params = CkksParams(log_n=13, log_q=40, max_limbs=10, dnum=2)
        with pytest.raises(ValueError):
            BootstrapModel(params)


class TestCachingLadder:
    """Figure 2: cumulative DRAM reduction (paper: 15/22/44/52 %)."""

    def test_monotone_reduction(self, baseline_total):
        previous = baseline_total.traffic.total
        for _, cfg in CACHING_LADDER[1:]:
            current = BootstrapModel(BASELINE_JUNG, cfg).total_cost().traffic.total
            assert current <= previous
            previous = current

    def test_ops_unchanged_across_ladder(self, baseline_total):
        for _, cfg in CACHING_LADDER:
            total = BootstrapModel(BASELINE_JUNG, cfg).total_cost()
            assert total.ops == baseline_total.ops

    def test_full_caching_reduction_in_paper_range(self, baseline_total):
        final = BootstrapModel(
            BASELINE_JUNG, MADConfig.caching_only()
        ).total_cost()
        reduction = 1 - final.traffic.total / baseline_total.traffic.total
        # Paper reports 52%; accept the 35-60% band for our re-derivation.
        assert 0.35 <= reduction <= 0.60

    def test_key_reads_constant_across_caching(self, baseline_total):
        """'The switching key reads remain constant for all of the caching
        optimizations.'"""
        for _, cfg in CACHING_LADDER:
            total = BootstrapModel(BASELINE_JUNG, cfg).total_cost()
            assert total.traffic.key_read == baseline_total.traffic.key_read


class TestAlgorithmicLadder:
    """Figure 3: merge -6% ops, hoisting -34% ops / +25% key reads,
    compression -50% key reads."""

    @pytest.fixture(scope="class")
    def ladder(self):
        return {
            name: BootstrapModel(BASELINE_JUNG, cfg).total_cost()
            for name, cfg in ALGORITHMIC_LADDER
        }

    def test_merge_reduces_ops_about_six_percent(self, ladder):
        base = ladder["Baseline (cached)"]
        merged = ladder["ModDown Merge"]
        reduction = 1 - merged.ops.total / base.ops.total
        assert 0.03 <= reduction <= 0.10

    def test_hoisting_reduces_ops_substantially(self, ladder):
        merged = ladder["ModDown Merge"]
        hoisted = ladder["ModDown Hoisting"]
        reduction = 1 - hoisted.ops.total / merged.ops.total
        assert 0.25 <= reduction <= 0.50

    def test_hoisting_increases_key_reads_about_quarter(self, ladder):
        merged = ladder["ModDown Merge"]
        hoisted = ladder["ModDown Hoisting"]
        increase = hoisted.traffic.key_read / merged.traffic.key_read - 1
        assert 0.10 <= increase <= 0.40

    def test_compression_halves_key_reads(self, ladder):
        hoisted = ladder["ModDown Hoisting"]
        compressed = ladder["Key Compression"]
        assert compressed.traffic.key_read == pytest.approx(
            hoisted.traffic.key_read / 2
        )

    def test_compression_leaves_ops_alone(self, ladder):
        assert (
            ladder["Key Compression"].ops == ladder["ModDown Hoisting"].ops
        )


class TestHeadlineClaims:
    def test_ai_improves_at_least_2x_with_all_optimizations(self, baseline_total):
        optimized = BootstrapModel(MAD_OPTIMAL, MADConfig.all()).total_cost()
        ratio = optimized.arithmetic_intensity / baseline_total.arithmetic_intensity
        # Paper claims 3x; our re-derivation achieves >2x.
        assert ratio >= 2.0

    def test_optimized_traffic_under_half_of_baseline(self, baseline_total):
        optimized = BootstrapModel(MAD_OPTIMAL, MADConfig.all()).total_cost()
        assert optimized.traffic.total < 0.5 * baseline_total.traffic.total

    def test_cache_limits_respected(self):
        # With only 6 MB, even MADConfig.all() cannot apply alpha caching.
        small = BootstrapModel(
            BASELINE_JUNG, MADConfig.all(), CacheModel.from_mb(6.5)
        ).total_cost()
        large = BootstrapModel(BASELINE_JUNG, MADConfig.all()).total_cost()
        assert small.traffic.total > large.traffic.total
