import pytest

from repro.params import BASELINE_JUNG, MAD_OPTIMAL
from repro.perf import CacheModel


class TestConstruction:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheModel(0)

    def test_from_mb(self):
        assert CacheModel.from_mb(32).size_bytes == 32 * 10**6
        assert CacheModel.from_mb(32).megabytes == pytest.approx(32.0)


class TestCapacity:
    def test_limb_capacity_at_full_scale(self):
        # One limb of an N=2^17 element is ~1.05 MB.
        assert CacheModel.from_mb(32).capacity_limbs(BASELINE_JUNG) == 30

    def test_tiny_cache_holds_nothing(self):
        assert CacheModel.from_mb(0.5).capacity_limbs(BASELINE_JUNG) == 0


class TestOptimizationThresholds:
    """The paper's cache sizes: 1 MB (O(1)), 6 MB (O(beta)), 27 MB (O(alpha))."""

    def test_one_mb_enables_o1_only(self):
        cache = CacheModel.from_mb(1.1)
        assert cache.fits_o1(BASELINE_JUNG)
        assert not cache.fits_beta(BASELINE_JUNG)
        assert not cache.fits_alpha(BASELINE_JUNG)

    def test_six_mb_enables_beta(self):
        cache = CacheModel.from_mb(6.5)
        assert cache.fits_beta(BASELINE_JUNG)
        assert not cache.fits_alpha(BASELINE_JUNG)

    def test_27_mb_enables_alpha(self):
        cache = CacheModel.from_mb(28.5)
        assert cache.fits_alpha(BASELINE_JUNG)
        assert cache.fits_limb_reorder(BASELINE_JUNG)

    def test_alpha_threshold_is_alpha_plus_three_limbs(self):
        # alpha = 12 at baseline parameters -> 15 limbs (~15.7 MB).
        assert not CacheModel.from_mb(15).fits_alpha(BASELINE_JUNG)
        assert CacheModel.from_mb(16).fits_alpha(BASELINE_JUNG)

    def test_32_mb_enables_everything_baseline(self):
        cache = CacheModel.from_mb(32)
        assert cache.fits_o1(BASELINE_JUNG)
        assert cache.fits_beta(BASELINE_JUNG)
        assert cache.fits_alpha(BASELINE_JUNG)

    def test_32_mb_supports_mad_optimal_alpha(self):
        # alpha = 21 for the MAD-optimal set: 24 limbs fit in 32 MB, which
        # is what makes the paper's 32 MB design point work.
        assert CacheModel.from_mb(32).fits_alpha(MAD_OPTIMAL)
        assert not CacheModel.from_mb(20).fits_alpha(MAD_OPTIMAL)

    def test_whole_ciphertext_f1_regime(self):
        from repro.params import CkksParams

        small = CkksParams(log_n=14, log_q=32, max_limbs=16, dnum=4)
        cache = CacheModel.from_mb(64)
        assert cache.fits_whole_ciphertext(small, 16)
        assert not cache.fits_whole_ciphertext(BASELINE_JUNG, 35)


class TestByteConvention:
    """Decimal-MB sizes vs binary-MiB limbs (see perf/cache.py docstring).

    `MB = 10**6` while one baseline limb is `2**20` bytes, so the paper's
    "1 MB ~ one limb" shorthand is off by ~4.9% — a literal 1 MB cache
    holds zero whole limbs.  These tests pin the convention so neither
    side drifts.
    """

    def test_mb_is_decimal(self):
        from repro.perf.cache import MB

        assert MB == 10**6

    def test_baseline_limb_is_one_mebibyte(self):
        assert BASELINE_JUNG.limb_bytes == 2**20

    def test_literal_one_mb_holds_zero_limbs(self):
        # The documented quirk: the paper's "1 MB" limb needs 1.048576
        # decimal MB.
        assert CacheModel.from_mb(1.0).capacity_limbs(BASELINE_JUNG) == 0
        assert CacheModel.from_mb(1.05).capacity_limbs(BASELINE_JUNG) == 1

    @pytest.mark.parametrize("megabytes", [1, 2, 6, 8, 16, 27, 32, 64, 192, 256])
    def test_capacity_matches_threshold_arithmetic(self, megabytes):
        """capacity_limbs and every fits_* threshold use the same units."""
        cache = CacheModel.from_mb(megabytes)
        limbs = cache.capacity_limbs(BASELINE_JUNG)
        # Same floor division the simulator's capacity_blocks performs.
        assert limbs == (megabytes * 10**6) // 2**20
        assert cache.fits_o1(BASELINE_JUNG) == (limbs >= 1)
        assert cache.fits_beta(BASELINE_JUNG) == (
            limbs >= 2 * BASELINE_JUNG.dnum
        )
        assert cache.fits_alpha(BASELINE_JUNG) == (
            limbs >= BASELINE_JUNG.alpha + 3
        )
        assert cache.fits_limb_reorder(BASELINE_JUNG) == cache.fits_alpha(
            BASELINE_JUNG
        )

    def test_simulator_agrees_with_cache_model_capacity(self):
        """The memsim replay and the analytical thresholds must agree on
        what a given cache size holds (same floor division)."""
        from repro.memsim.simulator import MemorySimulator

        for megabytes in (1, 2, 8, 27, 32, 192):
            size = megabytes * 10**6
            assert MemorySimulator(size).capacity_blocks(
                BASELINE_JUNG.limb_bytes
            ) == CacheModel(size).capacity_limbs(BASELINE_JUNG)

    def test_from_mb_rounds_instead_of_truncating(self):
        """The float-truncation bug: ``261.095424 * 10**6`` (exactly 249
        MiB-limbs) evaluates to 261095423.99999997, so ``int()`` lands
        one byte short and flips capacity_limbs from 249 to 248 exactly
        at a working-set boundary.  ``from_mb`` must round."""
        from repro.perf.cache import mb_to_bytes

        assert int(261.095424 * 10**6) == 261095423  # the bug, pinned
        assert mb_to_bytes(261.095424) == 261095424
        assert CacheModel.from_mb(261.095424).size_bytes == 249 * 2**20
        assert CacheModel.from_mb(261.095424).capacity_limbs(BASELINE_JUNG) == 249

    @pytest.mark.parametrize("limbs", [1, 6, 15, 24, 25, 30, 249, 251, 489])
    def test_exact_limb_budgets_survive_mb_round_trip(self, limbs):
        """A cache sized as exactly N limbs (expressed as its shortest
        decimal-MB literal) must hold exactly N limbs — no off-by-one
        from float noise.  249/251/489 are the budgets whose literals
        truncate one byte short without rounding."""
        megabytes = round(limbs * 2**20 / 10**6, 6)
        cache = CacheModel.from_mb(megabytes)
        assert cache.size_bytes == limbs * 2**20
        assert cache.capacity_limbs(BASELINE_JUNG) == limbs

    def test_mb_to_bytes_whole_values(self):
        from repro.perf.cache import mb_to_bytes

        assert mb_to_bytes(32) == 32_000_000
        assert mb_to_bytes(0.5) == 500_000

    def test_paper_quotes_are_within_five_percent_of_limb_counts(self):
        # 6 MB ~ 2*dnum = 6 limbs, 27 MB ~ alpha+3 = 15... the quoted
        # sizes are shorthand: assert the thresholds the quotes stand for.
        assert CacheModel.from_mb(6.5).capacity_limbs(BASELINE_JUNG) >= (
            2 * BASELINE_JUNG.dnum
        )
        assert CacheModel.from_mb(32).capacity_limbs(BASELINE_JUNG) >= (
            BASELINE_JUNG.alpha + 3
        )
