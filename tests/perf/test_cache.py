import pytest

from repro.params import BASELINE_JUNG, MAD_OPTIMAL
from repro.perf import CacheModel


class TestConstruction:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheModel(0)

    def test_from_mb(self):
        assert CacheModel.from_mb(32).size_bytes == 32 * 10**6
        assert CacheModel.from_mb(32).megabytes == pytest.approx(32.0)


class TestCapacity:
    def test_limb_capacity_at_full_scale(self):
        # One limb of an N=2^17 element is ~1.05 MB.
        assert CacheModel.from_mb(32).capacity_limbs(BASELINE_JUNG) == 30

    def test_tiny_cache_holds_nothing(self):
        assert CacheModel.from_mb(0.5).capacity_limbs(BASELINE_JUNG) == 0


class TestOptimizationThresholds:
    """The paper's cache sizes: 1 MB (O(1)), 6 MB (O(beta)), 27 MB (O(alpha))."""

    def test_one_mb_enables_o1_only(self):
        cache = CacheModel.from_mb(1.1)
        assert cache.fits_o1(BASELINE_JUNG)
        assert not cache.fits_beta(BASELINE_JUNG)
        assert not cache.fits_alpha(BASELINE_JUNG)

    def test_six_mb_enables_beta(self):
        cache = CacheModel.from_mb(6.5)
        assert cache.fits_beta(BASELINE_JUNG)
        assert not cache.fits_alpha(BASELINE_JUNG)

    def test_27_mb_enables_alpha(self):
        cache = CacheModel.from_mb(28.5)
        assert cache.fits_alpha(BASELINE_JUNG)
        assert cache.fits_limb_reorder(BASELINE_JUNG)

    def test_alpha_threshold_is_alpha_plus_three_limbs(self):
        # alpha = 12 at baseline parameters -> 15 limbs (~15.7 MB).
        assert not CacheModel.from_mb(15).fits_alpha(BASELINE_JUNG)
        assert CacheModel.from_mb(16).fits_alpha(BASELINE_JUNG)

    def test_32_mb_enables_everything_baseline(self):
        cache = CacheModel.from_mb(32)
        assert cache.fits_o1(BASELINE_JUNG)
        assert cache.fits_beta(BASELINE_JUNG)
        assert cache.fits_alpha(BASELINE_JUNG)

    def test_32_mb_supports_mad_optimal_alpha(self):
        # alpha = 21 for the MAD-optimal set: 24 limbs fit in 32 MB, which
        # is what makes the paper's 32 MB design point work.
        assert CacheModel.from_mb(32).fits_alpha(MAD_OPTIMAL)
        assert not CacheModel.from_mb(20).fits_alpha(MAD_OPTIMAL)

    def test_whole_ciphertext_f1_regime(self):
        from repro.params import CkksParams

        small = CkksParams(log_n=14, log_q=32, max_limbs=16, dnum=4)
        cache = CacheModel.from_mb(64)
        assert cache.fits_whole_ciphertext(small, 16)
        assert not cache.fits_whole_ciphertext(BASELINE_JUNG, 35)
