import pytest

from repro.params import BASELINE_JUNG
from repro.perf import MADConfig, PrimitiveCosts, pt_mat_vec_mult_cost
from repro.perf.matvec import bsgs_split


class TestBsgsSplit:
    def test_covers_all_diagonals(self):
        for diagonals in (1, 2, 7, 41, 100, 256):
            baby, giant = bsgs_split(diagonals)
            assert baby * giant >= diagonals

    def test_balanced_near_sqrt(self):
        baby, giant = bsgs_split(41)
        assert baby == 8
        assert giant == 6

    def test_larger_baby_doubles(self):
        baby, _ = bsgs_split(41, larger_baby=True)
        assert baby == 16

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            bsgs_split(0)


class TestMatVecCost:
    @pytest.fixture(scope="class")
    def baseline(self):
        return PrimitiveCosts(BASELINE_JUNG, MADConfig.none())

    def test_scales_with_diagonals(self, baseline):
        small = pt_mat_vec_mult_cost(baseline, 35, 8)
        large = pt_mat_vec_mult_cost(baseline, 35, 64)
        assert large.ops.total > small.ops.total
        assert large.traffic.total > small.traffic.total

    def test_hoisting_reduces_ops(self):
        base = PrimitiveCosts(BASELINE_JUNG, MADConfig.caching_only())
        hoisted = PrimitiveCosts(
            BASELINE_JUNG, MADConfig.caching_only().with_(mod_down_hoist=True)
        )
        cost_base = pt_mat_vec_mult_cost(base, 35, 41)
        cost_hoist = pt_mat_vec_mult_cost(hoisted, 35, 41)
        assert cost_hoist.ops.total < cost_base.ops.total

    def test_hoisting_increases_key_reads(self):
        """The larger baby step re-reads switching keys more often (+25%)."""
        base = PrimitiveCosts(BASELINE_JUNG, MADConfig.caching_only())
        hoisted = PrimitiveCosts(
            BASELINE_JUNG, MADConfig.caching_only().with_(mod_down_hoist=True)
        )
        key_base = pt_mat_vec_mult_cost(base, 35, 41).traffic.key_read
        key_hoist = pt_mat_vec_mult_cost(hoisted, 35, 41).traffic.key_read
        assert key_hoist > key_base
        assert key_hoist / key_base < 1.8

    def test_hoisting_reduces_ct_traffic(self):
        base = PrimitiveCosts(BASELINE_JUNG, MADConfig.caching_only())
        hoisted = PrimitiveCosts(
            BASELINE_JUNG, MADConfig.caching_only().with_(mod_down_hoist=True)
        )
        t_base = pt_mat_vec_mult_cost(base, 35, 41).traffic
        t_hoist = pt_mat_vec_mult_cost(hoisted, 35, 41).traffic
        assert (
            t_hoist.ct_read + t_hoist.ct_write
            < t_base.ct_read + t_base.ct_write
        )

    def test_beta_cache_reduces_reads_only(self):
        base = PrimitiveCosts(BASELINE_JUNG, MADConfig(cache_o1=True))
        beta = PrimitiveCosts(
            BASELINE_JUNG, MADConfig(cache_o1=True, cache_beta=True)
        )
        t_base = pt_mat_vec_mult_cost(base, 35, 41).traffic
        t_beta = pt_mat_vec_mult_cost(beta, 35, 41).traffic
        assert t_beta.ct_read < t_base.ct_read
        assert t_beta.ct_write == t_base.ct_write
        assert t_beta.key_read == t_base.key_read

    def test_caching_preserves_ops(self):
        base = PrimitiveCosts(BASELINE_JUNG, MADConfig.none())
        cached = PrimitiveCosts(BASELINE_JUNG, MADConfig.caching_only())
        assert (
            pt_mat_vec_mult_cost(cached, 35, 41).ops
            == pt_mat_vec_mult_cost(base, 35, 41).ops
        )

    def test_plaintext_reads_proportional_to_diagonals(self, baseline):
        limb = BASELINE_JUNG.limb_bytes
        cost = pt_mat_vec_mult_cost(baseline, 35, 41)
        assert cost.traffic.pt_read == 41 * 35 * limb
