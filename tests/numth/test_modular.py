import pytest
from hypothesis import given, strategies as st

from repro.numth import centered_mod, mod_inverse, mod_pow


class TestModPow:
    def test_small_cases(self):
        assert mod_pow(2, 10, 1000) == 24
        assert mod_pow(3, 0, 7) == 1
        assert mod_pow(0, 5, 7) == 0

    def test_rejects_negative_exponent(self):
        with pytest.raises(ValueError):
            mod_pow(2, -1, 7)

    def test_rejects_nonpositive_modulus(self):
        with pytest.raises(ValueError):
            mod_pow(2, 3, 0)

    @given(st.integers(0, 10**6), st.integers(0, 50), st.integers(2, 10**6))
    def test_matches_naive(self, base, exp, mod):
        assert mod_pow(base, exp, mod) == (base**exp) % mod


class TestModInverse:
    def test_known_inverse(self):
        assert mod_inverse(3, 7) == 5

    def test_inverse_of_one(self):
        assert mod_inverse(1, 97) == 1

    def test_no_inverse_raises(self):
        with pytest.raises(ValueError):
            mod_inverse(6, 9)

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            mod_inverse(1, 1)

    @given(st.integers(1, 10**9))
    def test_inverse_round_trip_prime_field(self, value):
        q = 2**31 - 1  # Mersenne prime
        v = value % q
        if v == 0:
            v = 1
        inv = mod_inverse(v, q)
        assert v * inv % q == 1


class TestCenteredMod:
    def test_positive_stays(self):
        assert centered_mod(3, 17) == 3

    def test_wraps_to_negative(self):
        assert centered_mod(16, 17) == -1

    def test_half_boundary_inclusive(self):
        # For even modulus, modulus/2 itself stays positive.
        assert centered_mod(5, 10) == 5
        assert centered_mod(6, 10) == -4

    def test_rejects_nonpositive_modulus(self):
        with pytest.raises(ValueError):
            centered_mod(1, 0)

    @given(st.integers(-(10**12), 10**12), st.integers(2, 10**9))
    def test_range_and_congruence(self, value, modulus):
        r = centered_mod(value, modulus)
        assert -modulus // 2 <= r <= modulus // 2
        assert (r - value) % modulus == 0
