import pytest
from hypothesis import given, strategies as st

from repro.numth import crt_reconstruct, find_ntt_primes, to_rns


class TestToRns:
    def test_simple_split(self):
        assert to_rns(10, [3, 7]) == [1, 3]

    def test_zero(self):
        assert to_rns(0, [5, 11, 13]) == [0, 0, 0]

    def test_negative_value_wraps(self):
        assert to_rns(-1, [5, 7]) == [4, 6]


class TestCrtReconstruct:
    def test_round_trip_small(self):
        moduli = [3, 5, 7]
        for x in range(105):
            assert crt_reconstruct(to_rns(x, moduli), moduli) == x

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            crt_reconstruct([1, 2], [3])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            crt_reconstruct([], [])

    def test_round_trip_ntt_primes(self):
        moduli = find_ntt_primes(30, 64, 4)
        total = 1
        for q in moduli:
            total *= q
        x = total - 12345
        assert crt_reconstruct(to_rns(x, moduli), moduli) == x

    @given(st.integers(0, 3 * 5 * 7 * 11 - 1))
    def test_round_trip_property(self, x):
        moduli = [3, 5, 7, 11]
        assert crt_reconstruct(to_rns(x, moduli), moduli) == x

    @given(st.integers(-(10**18), 10**18))
    def test_congruence_property(self, x):
        moduli = find_ntt_primes(25, 16, 3)
        recon = crt_reconstruct(to_rns(x, moduli), moduli)
        for q in moduli:
            assert recon % q == x % q
