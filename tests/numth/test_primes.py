import pytest
from hypothesis import given, settings, strategies as st

from repro.numth import find_ntt_primes, is_prime, primitive_root, root_of_unity
from repro.numth.modular import mod_pow
from repro.numth.primes import _pollard_rho, factorize


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 101):
            assert is_prime(p)

    def test_small_composites(self):
        for c in (0, 1, 4, 6, 9, 91, 561, 1105):  # includes Carmichael numbers
            assert not is_prime(c)

    def test_large_prime(self):
        assert is_prime(2**61 - 1)

    def test_large_composite(self):
        assert not is_prime((2**31 - 1) * (2**31 + 11))

    @given(st.integers(2, 10**4))
    def test_matches_trial_division(self, n):
        naive = all(n % d for d in range(2, int(n**0.5) + 1))
        assert is_prime(n) == naive


class TestFactorize:
    def test_prime_power(self):
        assert factorize(1024) == {2: 10}

    def test_mixed(self):
        assert factorize(360) == {2: 3, 3: 2, 5: 1}

    def test_one(self):
        assert factorize(1) == {}

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            factorize(0)

    @settings(max_examples=30)
    @given(st.integers(2, 10**9))
    def test_product_round_trip(self, n):
        factors = factorize(n)
        product = 1
        for p, e in factors.items():
            assert is_prime(p)
            product *= p**e
        assert product == n


class TestPollardRho:
    #: Semiprimes whose c=1 Brent run collapses both factors into one gcd
    #: batch (the batched gcd hits n), forcing the stepwise backtrack that
    #: the old Floyd loop skipped — it burned a ``c`` retry instead.
    BACKTRACK_SEMIPRIMES = (
        (719791, 666143),
        (595711, 767867),
        (980717, 916073),
    )

    def test_even_shortcut(self):
        assert _pollard_rho(2**20) == 2

    def test_plain_semiprime(self):
        p, q = 1_000_003, 1_000_033
        d = _pollard_rho(p * q)
        assert d in (p, q)

    @pytest.mark.parametrize("p,q", BACKTRACK_SEMIPRIMES)
    def test_backtrack_recovers_factor(self, p, q):
        n = p * q
        d = _pollard_rho(n)
        assert d in (p, q)
        assert factorize(n) == {p: 1, q: 1}

    def test_square_of_prime(self):
        p = 1_000_003
        assert factorize(p * p) == {p: 2}

    @settings(max_examples=20)
    @given(st.integers(10**6, 10**7), st.integers(10**6, 10**7))
    def test_factors_random_products(self, a, b):
        factors = factorize(a * b)
        product = 1
        for p, e in factors.items():
            assert is_prime(p)
            product *= p**e
        assert product == a * b


class TestPrimitiveRoot:
    def test_known_root(self):
        # 3 is the smallest primitive root of 7.
        assert primitive_root(7) == 3

    def test_generates_full_group(self):
        q = 97
        g = primitive_root(q)
        assert len({mod_pow(g, k, q) for k in range(q - 1)}) == q - 1

    def test_rejects_composite(self):
        with pytest.raises(ValueError):
            primitive_root(15)


class TestRootOfUnity:
    def test_order_is_exact(self):
        q = find_ntt_primes(20, 64, 1)[0]
        w = root_of_unity(128, q)
        assert mod_pow(w, 128, q) == 1
        assert mod_pow(w, 64, q) != 1

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            root_of_unity(5, 7)  # 5 does not divide 7 - 1
        with pytest.raises(ValueError):
            root_of_unity(4, 7)  # 4 does not divide 7 - 1


class TestFindNttPrimes:
    def test_congruence_and_size(self):
        primes = find_ntt_primes(30, 256, 5)
        assert len(primes) == len(set(primes)) == 5
        for p in primes:
            assert is_prime(p)
            assert p % 512 == 1
            assert 2**29 < p < 2**30

    def test_descending_order(self):
        primes = find_ntt_primes(40, 128, 4)
        assert primes == sorted(primes, reverse=True)

    def test_exclusion_respected(self):
        first = find_ntt_primes(30, 128, 3)
        second = find_ntt_primes(30, 128, 3, exclude=first)
        assert not set(first) & set(second)

    def test_rejects_non_power_of_two_degree(self):
        with pytest.raises(ValueError):
            find_ntt_primes(30, 100, 1)

    def test_rejects_impossible_request(self):
        with pytest.raises(ValueError):
            find_ntt_primes(8, 64, 50)
