import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.numth import NttContext, find_ntt_primes
from repro.numth.ntt import _bit_reverse_table


def _naive_negacyclic_multiply(a, b, q):
    n = len(a)
    out = [0] * n
    for i, ai in enumerate(a):
        for j, bj in enumerate(b):
            k = i + j
            term = ai * bj
            if k >= n:
                out[k - n] = (out[k - n] - term) % q
            else:
                out[k] = (out[k] + term) % q
    return out


class TestBitReverseTable:
    """Pins the arithmetic recurrence against the original string-based
    construction (format → reverse → parse) it replaced."""

    @staticmethod
    def _string_based(n):
        bits = n.bit_length() - 1
        return [
            int(format(i, f"0{bits}b")[::-1], 2) if bits else 0
            for i in range(n)
        ]

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64, 256, 4096, 2**15])
    def test_matches_string_construction(self, n):
        assert _bit_reverse_table(n) == self._string_based(n)

    @pytest.mark.parametrize("n", [2, 16, 1024])
    def test_is_an_involution(self, n):
        table = _bit_reverse_table(n)
        assert sorted(table) == list(range(n))
        assert all(table[table[i]] == i for i in range(n))


@pytest.fixture(scope="module")
def ctx16():
    q = find_ntt_primes(30, 16, 1)[0]
    return NttContext(16, q)


class TestConstruction:
    def test_rejects_non_power_of_two(self):
        q = find_ntt_primes(30, 16, 1)[0]
        with pytest.raises(ValueError):
            NttContext(12, q)

    def test_rejects_incompatible_modulus(self):
        with pytest.raises(ValueError):
            NttContext(16, 113)  # 112 not divisible by 32

    def test_psi_has_order_2n(self, ctx16):
        assert pow(ctx16.psi, 32, ctx16.q) == 1
        assert pow(ctx16.psi, 16, ctx16.q) != 1


class TestRoundTrip:
    def test_identity_round_trip(self, ctx16):
        coeffs = list(range(16))
        assert ctx16.inverse(ctx16.forward(coeffs)) == coeffs

    def test_round_trip_random(self, ctx16):
        rng = random.Random(7)
        coeffs = [rng.randrange(ctx16.q) for _ in range(16)]
        assert ctx16.inverse(ctx16.forward(coeffs)) == coeffs

    def test_wrong_length_rejected(self, ctx16):
        with pytest.raises(ValueError):
            ctx16.forward([1] * 8)
        with pytest.raises(ValueError):
            ctx16.inverse([1] * 32)

    @settings(max_examples=25)
    @given(st.lists(st.integers(0, 2**29), min_size=16, max_size=16))
    def test_round_trip_property(self, coeffs):
        q = find_ntt_primes(30, 16, 1)[0]
        ctx = NttContext(16, q)
        assert ctx.inverse(ctx.forward(coeffs)) == [c % q for c in coeffs]


class TestLinearity:
    def test_forward_is_additive(self, ctx16):
        rng = random.Random(11)
        a = [rng.randrange(ctx16.q) for _ in range(16)]
        b = [rng.randrange(ctx16.q) for _ in range(16)]
        fa, fb = ctx16.forward(a), ctx16.forward(b)
        fsum = ctx16.forward([(x + y) % ctx16.q for x, y in zip(a, b)])
        assert fsum == [(x + y) % ctx16.q for x, y in zip(fa, fb)]


class TestNegacyclicMultiply:
    def test_multiply_by_one(self, ctx16):
        one = [1] + [0] * 15
        a = list(range(1, 17))
        assert ctx16.negacyclic_multiply(a, one) == a

    def test_x_to_n_is_minus_one(self, ctx16):
        # x^(N/2) * x^(N/2) = x^N = -1 in the negacyclic ring.
        half = [0] * 16
        half[8] = 1
        result = ctx16.negacyclic_multiply(half, half)
        expected = [0] * 16
        expected[0] = ctx16.q - 1
        assert result == expected

    def test_matches_schoolbook(self, ctx16):
        rng = random.Random(3)
        a = [rng.randrange(ctx16.q) for _ in range(16)]
        b = [rng.randrange(ctx16.q) for _ in range(16)]
        assert ctx16.negacyclic_multiply(a, b) == _naive_negacyclic_multiply(
            a, b, ctx16.q
        )

    def test_matches_schoolbook_larger_degree(self):
        q = find_ntt_primes(40, 64, 1)[0]
        ctx = NttContext(64, q)
        rng = random.Random(5)
        a = [rng.randrange(q) for _ in range(64)]
        b = [rng.randrange(q) for _ in range(64)]
        assert ctx.negacyclic_multiply(a, b) == _naive_negacyclic_multiply(a, b, q)

    @settings(max_examples=15)
    @given(
        st.lists(st.integers(0, 2**20), min_size=16, max_size=16),
        st.lists(st.integers(0, 2**20), min_size=16, max_size=16),
    )
    def test_commutativity(self, a, b):
        q = find_ntt_primes(30, 16, 1)[0]
        ctx = NttContext(16, q)
        assert ctx.negacyclic_multiply(a, b) == ctx.negacyclic_multiply(b, a)
