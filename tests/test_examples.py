"""Smoke tests: the example scripts must run end to end.

Each example is imported as a module and its ``main``-equivalent executed;
failures here mean the public API drifted away from the documentation.
"""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str) -> None:
    # Execute under the __main__ guard, exactly like `python examples/x.py`.
    runpy.run_path(str(EXAMPLES / f"{name}.py"), run_name="__main__")


class TestExamplesRun:
    def test_quickstart(self, capsys):
        _run_example("quickstart")
        out = capsys.readouterr().out
        assert "bootstrap" in out and "arithmetic intensity" in out

    def test_bootstrap_analysis(self, capsys):
        _run_example("bootstrap_analysis")
        out = capsys.readouterr().out
        assert "Figure 2" in out and "Figure 3" in out

    def test_noise_budget(self, capsys):
        _run_example("noise_budget")
        out = capsys.readouterr().out
        assert "predicted precision" in out

    def test_private_image_filter(self, capsys):
        _run_example("private_image_filter")
        out = capsys.readouterr().out
        assert "max error" in out

    def test_encrypted_logistic_regression(self, capsys):
        _run_example("encrypted_logistic_regression")
        out = capsys.readouterr().out
        assert "agreement" in out

    @pytest.mark.slow
    def test_accelerator_comparison(self, capsys):
        _run_example("accelerator_comparison")
        out = capsys.readouterr().out
        assert "Bootstrapping comparison" in out
