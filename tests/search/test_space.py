from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import BASELINE_JUNG, MAD_OPTIMAL
from repro.search import enumerate_parameter_space


class TestParameterSpace:
    def test_all_candidates_secure_and_bootstrappable(self):
        for params in enumerate_parameter_space(
            log_q_choices=(50, 54),
            max_limbs_choices=(35, 40),
            dnum_choices=(2, 3),
            fft_iter_choices=(3, 6),
        ):
            assert params.is_128_bit_secure()
            assert params.supports_bootstrapping()
            assert params.log_q1 >= 400

    def test_paper_optimum_is_in_the_space(self):
        candidates = list(
            enumerate_parameter_space(
                log_q_choices=(50,),
                max_limbs_choices=(40,),
                dnum_choices=(2,),
                fft_iter_choices=(6,),
            )
        )
        assert MAD_OPTIMAL in candidates

    def test_baseline_is_in_the_space(self):
        candidates = list(
            enumerate_parameter_space(
                log_q_choices=(54,),
                max_limbs_choices=(35,),
                dnum_choices=(3,),
                fft_iter_choices=(3,),
            )
        )
        assert BASELINE_JUNG in candidates

    def test_insecure_combinations_pruned(self):
        # 60-bit limbs at L=45 with dnum=1 exceed the security bound.
        candidates = list(
            enumerate_parameter_space(
                log_q_choices=(60,),
                max_limbs_choices=(45,),
                dnum_choices=(1,),
                fft_iter_choices=(3,),
            )
        )
        assert candidates == []

    def test_min_log_q1_prunes_shallow_sets(self):
        candidates = list(
            enumerate_parameter_space(
                log_q_choices=(50,),
                max_limbs_choices=(24,),
                dnum_choices=(3,),
                fft_iter_choices=(3, 6),
                min_log_q1=400,
            )
        )
        # L=24 with fftIter=6 leaves 3 limbs = 150 bits < 400: pruned.
        assert all(p.fft_iter == 3 for p in candidates)

    def test_space_is_reasonably_small(self):
        """Security pruning keeps brute force tractable (paper: minutes)."""
        count = sum(1 for _ in enumerate_parameter_space())
        assert 0 < count < 10_000


#: Random sub-grids of the real enumeration ranges.
_GRIDS = st.fixed_dictionaries(
    {
        "log_q_choices": st.lists(
            st.sampled_from(range(40, 61, 2)), min_size=1, max_size=3, unique=True
        ),
        "max_limbs_choices": st.lists(
            st.sampled_from(range(24, 46)), min_size=1, max_size=3, unique=True
        ),
        "dnum_choices": st.lists(
            st.sampled_from((1, 2, 3, 4, 5, 6)), min_size=1, max_size=3, unique=True
        ),
        "fft_iter_choices": st.lists(
            st.sampled_from((2, 3, 4, 6, 8)), min_size=1, max_size=3, unique=True
        ),
        "min_log_q1": st.sampled_from((0, 200, 400)),
        "require_security": st.booleans(),
    }
)


class TestSpaceProperties:
    """Property-based guarantees the sweep engine's determinism contract
    leans on: the candidate axis must be deterministic and duplicate-free,
    and every yielded set must satisfy the admissibility constraints."""

    @settings(max_examples=40, deadline=None)
    @given(grid=_GRIDS)
    def test_enumeration_deterministic_and_duplicate_free(self, grid):
        first = list(enumerate_parameter_space(**grid))
        second = list(enumerate_parameter_space(**grid))
        assert first == second
        assert len(set(first)) == len(first)

    @settings(max_examples=40, deadline=None)
    @given(grid=_GRIDS)
    def test_every_candidate_satisfies_the_constraints(self, grid):
        for params in enumerate_parameter_space(**grid):
            assert params.log_q in grid["log_q_choices"]
            assert params.max_limbs in grid["max_limbs_choices"]
            assert params.dnum in grid["dnum_choices"]
            assert params.fft_iter in grid["fft_iter_choices"]
            assert params.dnum <= params.max_limbs + 1
            assert params.supports_bootstrapping()
            assert params.log_q1 >= grid["min_log_q1"]
            if grid["require_security"]:
                assert params.is_128_bit_secure()

    @settings(max_examples=20, deadline=None)
    @given(grid=_GRIDS)
    def test_candidates_follow_grid_nesting_order(self, grid):
        """Yield order is the declared nesting (log_q, L, dnum, fftIter) —
        the canonical order the sweep's ranking tie-break relies on."""
        order = {
            (p.log_q, p.max_limbs, p.dnum, p.fft_iter): i
            for i, p in enumerate(enumerate_parameter_space(**grid))
        }
        expected = sorted(
            order,
            key=lambda key: (
                grid["log_q_choices"].index(key[0]),
                grid["max_limbs_choices"].index(key[1]),
                grid["dnum_choices"].index(key[2]),
                grid["fft_iter_choices"].index(key[3]),
            ),
        )
        assert [order[key] for key in expected] == list(range(len(order)))
