from repro.params import BASELINE_JUNG, MAD_OPTIMAL
from repro.search import enumerate_parameter_space


class TestParameterSpace:
    def test_all_candidates_secure_and_bootstrappable(self):
        for params in enumerate_parameter_space(
            log_q_choices=(50, 54),
            max_limbs_choices=(35, 40),
            dnum_choices=(2, 3),
            fft_iter_choices=(3, 6),
        ):
            assert params.is_128_bit_secure()
            assert params.supports_bootstrapping()
            assert params.log_q1 >= 400

    def test_paper_optimum_is_in_the_space(self):
        candidates = list(
            enumerate_parameter_space(
                log_q_choices=(50,),
                max_limbs_choices=(40,),
                dnum_choices=(2,),
                fft_iter_choices=(6,),
            )
        )
        assert MAD_OPTIMAL in candidates

    def test_baseline_is_in_the_space(self):
        candidates = list(
            enumerate_parameter_space(
                log_q_choices=(54,),
                max_limbs_choices=(35,),
                dnum_choices=(3,),
                fft_iter_choices=(3,),
            )
        )
        assert BASELINE_JUNG in candidates

    def test_insecure_combinations_pruned(self):
        # 60-bit limbs at L=45 with dnum=1 exceed the security bound.
        candidates = list(
            enumerate_parameter_space(
                log_q_choices=(60,),
                max_limbs_choices=(45,),
                dnum_choices=(1,),
                fft_iter_choices=(3,),
            )
        )
        assert candidates == []

    def test_min_log_q1_prunes_shallow_sets(self):
        candidates = list(
            enumerate_parameter_space(
                log_q_choices=(50,),
                max_limbs_choices=(24,),
                dnum_choices=(3,),
                fft_iter_choices=(3, 6),
                min_log_q1=400,
            )
        )
        # L=24 with fftIter=6 leaves 3 limbs = 150 bits < 400: pruned.
        assert all(p.fft_iter == 3 for p in candidates)

    def test_space_is_reasonably_small(self):
        """Security pruning keeps brute force tractable (paper: minutes)."""
        count = sum(1 for _ in enumerate_parameter_space())
        assert 0 < count < 10_000
