import pytest

from repro.search import bootstrap_throughput


class TestEquation3:
    def test_gpu_row_of_table6(self):
        """n=2^16, log Q1=1080, bp=19, brt=328.7 ms -> throughput 409."""
        tp = bootstrap_throughput(2**16, 1080, 19, 0.3287)
        assert tp == pytest.approx(409, rel=0.01)

    def test_ark_row_of_table6(self):
        tp = bootstrap_throughput(2**15, 432, 19, 0.0039)
        assert tp == pytest.approx(6896, rel=0.01)

    def test_craterlake_row_of_table6(self):
        tp = bootstrap_throughput(2**16, 532, 19, 0.00633)
        assert tp == pytest.approx(10465, rel=0.01)

    def test_f1_row_of_table6(self):
        # Unpacked: a single slot at 24-bit precision.  The paper prints
        # 1.5 but Eq. 3 with the row's own numbers yields ~0.77; either
        # way the headline holds: unpacked throughput is ~3 orders of
        # magnitude below every packed design.
        tp = bootstrap_throughput(1, 416, 24, 0.0013)
        assert 0.5 <= tp <= 1.6

    def test_scales_inversely_with_runtime(self):
        fast = bootstrap_throughput(2**16, 1080, 19, 0.1)
        slow = bootstrap_throughput(2**16, 1080, 19, 0.2)
        assert fast == pytest.approx(2 * slow)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            bootstrap_throughput(0, 1080, 19, 0.1)
        with pytest.raises(ValueError):
            bootstrap_throughput(8, 0, 19, 0.1)
        with pytest.raises(ValueError):
            bootstrap_throughput(8, 1080, 0, 0.1)
        with pytest.raises(ValueError):
            bootstrap_throughput(8, 1080, 19, 0.0)
