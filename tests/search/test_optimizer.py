import pytest

from repro.params import BASELINE_JUNG, MAD_OPTIMAL
from repro.perf import MADConfig
from repro.hardware import GPU_JUNG, mad_counterpart
from repro.search import find_optimal_parameters


@pytest.fixture(scope="module")
def gpu_results():
    """Search over a focused grid around the paper's Table 5 sets."""
    from repro.search import enumerate_parameter_space

    candidates = list(
        enumerate_parameter_space(
            log_q_choices=(50, 54, 58),
            max_limbs_choices=(30, 35, 40),
            dnum_choices=(1, 2, 3, 4),
            fft_iter_choices=(3, 6),
        )
    )
    return find_optimal_parameters(
        mad_counterpart(GPU_JUNG), candidates=candidates, top=len(candidates)
    )


class TestOptimizer:
    def test_results_sorted_by_throughput(self, gpu_results):
        throughputs = [r.throughput for r in gpu_results]
        assert throughputs == sorted(throughputs, reverse=True)

    def test_optimum_prefers_small_dnum(self, gpu_results):
        """Table 5: the memory-aware optimum uses dnum=2 (vs baseline 3)."""
        assert gpu_results[0].params.dnum <= 2

    def test_optimum_beats_baseline_parameters(self, gpu_results):
        by_params = {r.params: r for r in gpu_results}
        best = gpu_results[0]
        baseline = by_params[BASELINE_JUNG]
        assert best.throughput > baseline.throughput

    def test_paper_optimum_ranks_above_baseline(self, gpu_results):
        by_params = {r.params: r for r in gpu_results}
        assert (
            by_params[MAD_OPTIMAL].throughput
            > by_params[BASELINE_JUNG].throughput
        )

    def test_top_limits_results(self):
        from repro.search import enumerate_parameter_space

        candidates = list(
            enumerate_parameter_space(
                log_q_choices=(50,),
                max_limbs_choices=(35, 40),
                dnum_choices=(2, 3),
                fft_iter_choices=(3, 6),
            )
        )
        results = find_optimal_parameters(
            mad_counterpart(GPU_JUNG), candidates=candidates, top=3
        )
        assert len(results) == 3

    def test_describe_mentions_bound(self, gpu_results):
        text = gpu_results[0].describe()
        assert "bound" in text and "throughput" in text

    def test_runtime_positive(self, gpu_results):
        for result in gpu_results:
            assert result.runtime.seconds > 0
            assert result.cost.ops.total > 0
