import pytest

from repro.params import BASELINE_JUNG, MAD_OPTIMAL
from repro.perf import MADConfig
from repro.hardware import GPU_JUNG, mad_counterpart
from repro.search import find_optimal_parameters, params_key, ranking_key


@pytest.fixture(scope="module")
def gpu_results():
    """Search over a focused grid around the paper's Table 5 sets."""
    from repro.search import enumerate_parameter_space

    candidates = list(
        enumerate_parameter_space(
            log_q_choices=(50, 54, 58),
            max_limbs_choices=(30, 35, 40),
            dnum_choices=(1, 2, 3, 4),
            fft_iter_choices=(3, 6),
        )
    )
    return find_optimal_parameters(
        mad_counterpart(GPU_JUNG), candidates=candidates, top=len(candidates)
    )


class TestOptimizer:
    def test_results_sorted_by_throughput(self, gpu_results):
        throughputs = [r.throughput for r in gpu_results]
        assert throughputs == sorted(throughputs, reverse=True)

    def test_optimum_prefers_small_dnum(self, gpu_results):
        """Table 5: the memory-aware optimum uses dnum=2 (vs baseline 3)."""
        assert gpu_results[0].params.dnum <= 2

    def test_optimum_beats_baseline_parameters(self, gpu_results):
        by_params = {r.params: r for r in gpu_results}
        best = gpu_results[0]
        baseline = by_params[BASELINE_JUNG]
        assert best.throughput > baseline.throughput

    def test_paper_optimum_ranks_above_baseline(self, gpu_results):
        by_params = {r.params: r for r in gpu_results}
        assert (
            by_params[MAD_OPTIMAL].throughput
            > by_params[BASELINE_JUNG].throughput
        )

    def test_top_limits_results(self):
        from repro.search import enumerate_parameter_space

        candidates = list(
            enumerate_parameter_space(
                log_q_choices=(50,),
                max_limbs_choices=(35, 40),
                dnum_choices=(2, 3),
                fft_iter_choices=(3, 6),
            )
        )
        results = find_optimal_parameters(
            mad_counterpart(GPU_JUNG), candidates=candidates, top=3
        )
        assert len(results) == 3

    def test_describe_mentions_bound(self, gpu_results):
        text = gpu_results[0].describe()
        assert "bound" in text and "throughput" in text

    def test_runtime_positive(self, gpu_results):
        for result in gpu_results:
            assert result.runtime.seconds > 0
            assert result.cost.ops.total > 0


class TestRankingDeterminism:
    """The bugfix: ranking used throughput alone, so equal-throughput
    candidates ranked in enumeration order — nondeterministic under a
    parallel merge.  ranking_key is a documented total order."""

    def _candidates(self):
        from repro.search import enumerate_parameter_space

        return list(
            enumerate_parameter_space(
                log_q_choices=(50, 54),
                max_limbs_choices=(35, 40),
                dnum_choices=(2, 3),
                fft_iter_choices=(3, 6),
            )
        )

    def test_params_key_is_a_total_order(self):
        candidates = self._candidates()
        keys = [params_key(p) for p in candidates]
        assert len(set(keys)) == len(keys)

    def test_ranking_is_invariant_under_enumeration_order(self):
        candidates = self._candidates()
        forward = find_optimal_parameters(
            mad_counterpart(GPU_JUNG), candidates=candidates, top=len(candidates)
        )
        backward = find_optimal_parameters(
            mad_counterpart(GPU_JUNG),
            candidates=list(reversed(candidates)),
            top=len(candidates),
        )
        assert forward == backward

    def test_tie_break_orders_equal_throughput_runtime(self):
        """Synthetic exact ties must fall back to the canonical params key."""
        import dataclasses

        design = mad_counterpart(GPU_JUNG)
        base = find_optimal_parameters(
            design, candidates=[BASELINE_JUNG], top=1
        )[0]
        clone_params = dataclasses.replace(BASELINE_JUNG, fft_iter=4)
        clone = dataclasses.replace(base, params=clone_params)
        assert ranking_key(clone) != ranking_key(base)
        ordered = sorted([clone, base], key=ranking_key)
        assert ordered == sorted([base, clone], key=ranking_key)
        assert ordered[0].params.fft_iter < ordered[1].params.fft_iter

    def test_jobs_do_not_change_ranking(self):
        """Acceptance: --jobs 1 and --jobs N produce bit-identical rank."""
        candidates = self._candidates()
        serial = find_optimal_parameters(
            mad_counterpart(GPU_JUNG), candidates=candidates, top=len(candidates)
        )
        parallel = find_optimal_parameters(
            mad_counterpart(GPU_JUNG),
            candidates=candidates,
            top=len(candidates),
            jobs=2,
        )
        assert serial == parallel


class TestCandidateMaterialisation:
    """The bugfix: a generator passed as ``candidates`` was silently
    exhausted by the first pass; it must be materialised exactly once."""

    def test_generator_candidates_fully_evaluated(self):
        from repro.search import enumerate_parameter_space

        as_list = list(
            enumerate_parameter_space(
                log_q_choices=(50,),
                max_limbs_choices=(35, 40),
                dnum_choices=(2, 3),
                fft_iter_choices=(3, 6),
            )
        )
        as_generator = enumerate_parameter_space(
            log_q_choices=(50,),
            max_limbs_choices=(35, 40),
            dnum_choices=(2, 3),
            fft_iter_choices=(3, 6),
        )
        design = mad_counterpart(GPU_JUNG)
        from_generator = find_optimal_parameters(
            design, candidates=as_generator, top=len(as_list)
        )
        from_list = find_optimal_parameters(
            design, candidates=as_list, top=len(as_list)
        )
        assert len(from_generator) == len(as_list)
        assert from_generator == from_list

    def test_empty_candidates_return_empty(self):
        assert find_optimal_parameters(
            mad_counterpart(GPU_JUNG), candidates=iter(())
        ) == []
