"""Whole-result lint cache: content-hash keys, replay, invalidation."""

import textwrap
from pathlib import Path

from repro.lint import LintCache, all_rules, run_lint
from repro.lint.cache import CACHE_FORMAT


def _write(tmp_path, relpath, code):
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(code))
    return target


class TestRunKey:
    def test_key_changes_with_content(self):
        cache = LintCache(root=Path("."))
        base = cache.run_key(["A"], [("f.py", "x = 1\n")])
        assert cache.run_key(["A"], [("f.py", "x = 2\n")]) != base
        assert cache.run_key(["A"], [("f.py", "x = 1\n")]) == base

    def test_key_changes_with_rule_selection(self):
        cache = LintCache(root=Path("."))
        files = [("f.py", "x = 1\n")]
        assert cache.run_key(["A"], files) != cache.run_key(["A", "B"], files)

    def test_key_independent_of_file_order(self):
        cache = LintCache(root=Path("."))
        files = [("a.py", "x = 1\n"), ("b.py", "y = 2\n")]
        assert cache.run_key(["A"], files) == cache.run_key(
            ["A"], list(reversed(files))
        )


class TestReplay:
    def test_second_identical_run_replays_from_cache(self, tmp_path):
        _write(tmp_path / "tree", "mod.py", "x = 1\n")
        cache = LintCache(tmp_path / ".lint_cache")
        first = run_lint([tmp_path / "tree"], all_rules(), cache=cache)
        assert not first.from_cache
        second = run_lint([tmp_path / "tree"], all_rules(), cache=cache)
        assert second.from_cache
        assert second.files == first.files
        assert second.rules == first.rules
        assert [f.to_dict() for f in second.findings] == [
            f.to_dict() for f in first.findings
        ]

    def test_cached_findings_round_trip(self, tmp_path):
        _write(
            tmp_path / "tree",
            "perf/primitives.py",
            """
            def cost(limbs):
                dram_bytes = 0
                dram_bytes += 8 * limbs
                return dram_bytes
            """,
        )
        cache = LintCache(tmp_path / ".lint_cache")
        first = run_lint([tmp_path / "tree"], all_rules(), cache=cache)
        assert first.findings
        second = run_lint([tmp_path / "tree"], all_rules(), cache=cache)
        assert second.from_cache
        assert [f.render() for f in second.findings] == [
            f.render() for f in first.findings
        ]

    def test_content_change_invalidates(self, tmp_path):
        target = _write(tmp_path / "tree", "mod.py", "x = 1\n")
        cache = LintCache(tmp_path / ".lint_cache")
        run_lint([tmp_path / "tree"], all_rules(), cache=cache)
        target.write_text("x = 2\n")
        again = run_lint([tmp_path / "tree"], all_rules(), cache=cache)
        assert not again.from_cache

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        _write(tmp_path / "tree", "mod.py", "x = 1\n")
        cache = LintCache(tmp_path / ".lint_cache")
        run_lint([tmp_path / "tree"], all_rules(), cache=cache)
        for entry in (tmp_path / ".lint_cache").glob("*.json"):
            entry.write_text("{not json")
        again = run_lint([tmp_path / "tree"], all_rules(), cache=cache)
        assert not again.from_cache

    def test_format_bump_is_a_miss(self, tmp_path):
        _write(tmp_path / "tree", "mod.py", "x = 1\n")
        cache = LintCache(tmp_path / ".lint_cache")
        run_lint([tmp_path / "tree"], all_rules(), cache=cache)
        for entry in (tmp_path / ".lint_cache").glob("*.json"):
            entry.write_text(
                entry.read_text().replace(CACHE_FORMAT, "repro.lint.cache/v0")
            )
        again = run_lint([tmp_path / "tree"], all_rules(), cache=cache)
        assert not again.from_cache
