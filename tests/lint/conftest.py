"""Shared helpers for the repro.lint test suite."""

import textwrap

import pytest


@pytest.fixture
def lint_tree(tmp_path):
    """Write dedented fixture files into tmp_path and lint them.

    Usage::

        result = lint_tree({"perf/primitives.py": "..."}, rules=["LedgerDiscipline"])
    """
    from repro.lint import get_rules, run_lint

    def _lint(files, rules=None):
        for relpath, code in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(code))
        selected = get_rules(rules) if rules is not None else None
        return run_lint([tmp_path], selected)

    return _lint
