"""Shared helpers for the whole-program analysis tests."""

import ast
import textwrap

import pytest

from repro.lint.program.symbols import Program


@pytest.fixture
def build_program():
    """Build a :class:`Program` straight from ``{path: source}`` dicts."""

    def _build(files, baseline_dirs=None):
        parsed = [
            (path, ast.parse(textwrap.dedent(code)))
            for path, code in files.items()
        ]
        return Program.build(parsed, baseline_dirs=baseline_dirs)

    return _build


@pytest.fixture
def program_lint(tmp_path):
    """Write fixture files, run only the program pass, return findings."""
    from repro.lint import all_program_rules, get_program_rules, run_lint

    def _lint(files, rules=None, baseline_dirs=None):
        for relpath, code in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(code))
        selected = (
            get_program_rules(rules)
            if rules is not None
            else all_program_rules()
        )
        return run_lint(
            [tmp_path],
            rules=[],
            program_rules=selected,
            baseline_dirs=baseline_dirs,
        )

    return _lint
