"""Project symbol table: module naming, imports, resolution."""

from repro.lint.program.symbols import Program


class TestModuleNaming:
    def test_dotted_names_relative_to_common_root(self, build_program):
        program = build_program(
            {
                "pkg/perf/model.py": "X = 1\n",
                "pkg/obs/export.py": "Y = 2\n",
            }
        )
        assert sorted(program.modules) == ["obs.export", "perf.model"]

    def test_package_init_names_the_package(self, build_program):
        program = build_program(
            {
                "pkg/perf/__init__.py": "",
                "pkg/perf/model.py": "X = 1\n",
                "pkg/other.py": "Y = 2\n",
            }
        )
        assert sorted(program.modules) == ["other", "perf", "perf.model"]

    def test_build_is_independent_of_file_order(self):
        import ast

        files = [
            ("pkg/a.py", ast.parse("import b\n")),
            ("pkg/b.py", ast.parse("X = 1\n")),
        ]
        forward = Program.build(files)
        backward = Program.build(list(reversed(files)))
        assert sorted(forward.modules) == sorted(backward.modules)

    def test_module_named_matches_by_suffix(self, build_program):
        program = build_program(
            {
                "pkg/perf/model.py": "X = 1\n",
                "pkg/obs/export.py": "Y = 2\n",
            }
        )
        assert program.module_named("perf.model").name == "perf.model"
        # A fixture tree import says ``repro.perf.model``; the table
        # registered ``perf.model`` — reverse-suffix matching covers it.
        assert program.module_named("repro.perf.model").name == "perf.model"


class TestResolution:
    def test_from_import_resolves_to_project_function(self, build_program):
        program = build_program(
            {
                "pkg/util.py": "def helper():\n    return 1\n",
                "pkg/main.py": (
                    "from util import helper\n"
                    "def run():\n"
                    "    return helper()\n"
                ),
            }
        )
        module = program.modules["main"]
        resolved = program.resolve_name(module, "helper")
        assert resolved.kind == "project"
        assert resolved.name == "util.helper"

    def test_module_attribute_chain_resolves(self, build_program):
        program = build_program(
            {
                "pkg/util.py": "def helper():\n    return 1\n",
                "pkg/main.py": (
                    "import util\n"
                    "def run():\n"
                    "    return util.helper()\n"
                ),
            }
        )
        module = program.modules["main"]
        resolved = program.resolve_dotted(module, ["util", "helper"])
        assert resolved.kind == "project"
        assert resolved.name == "util.helper"

    def test_relative_import_resolves(self, build_program):
        program = build_program(
            {
                "pkg/anchor.py": "Z = 0\n",
                "pkg/sub/__init__.py": "",
                "pkg/sub/util.py": "def helper():\n    return 1\n",
                "pkg/sub/main.py": (
                    "from .util import helper\n"
                    "def run():\n"
                    "    return helper()\n"
                ),
            }
        )
        module = program.modules["sub.main"]
        resolved = program.resolve_name(module, "helper")
        assert resolved.kind == "project"
        assert resolved.name == "sub.util.helper"

    def test_function_local_import_resolves(self, build_program):
        program = build_program(
            {
                "pkg/util.py": "def helper():\n    return 1\n",
                "pkg/main.py": (
                    "def run():\n"
                    "    from util import helper\n"
                    "    return helper()\n"
                ),
            }
        )
        module = program.modules["main"]
        resolved = program.resolve_name(module, "helper")
        assert resolved.kind == "project"
        assert resolved.name == "util.helper"

    def test_module_level_import_wins_over_local_alias(self, build_program):
        program = build_program(
            {
                "pkg/one.py": "def f():\n    return 1\n",
                "pkg/two.py": "def f():\n    return 2\n",
                "pkg/main.py": (
                    "from one import f\n"
                    "def run():\n"
                    "    from two import f\n"
                    "    return f()\n"
                ),
            }
        )
        module = program.modules["main"]
        assert program.resolve_name(module, "f").name == "one.f"

    def test_external_import_resolves_to_dotted_name(self, build_program):
        program = build_program(
            {
                "pkg/main.py": (
                    "import time\n"
                    "def run():\n"
                    "    return time.perf_counter()\n"
                ),
            }
        )
        module = program.modules["main"]
        resolved = program.resolve_dotted(module, ["time", "perf_counter"])
        assert resolved.kind == "external"
        assert resolved.name == "time.perf_counter"

    def test_constants_and_class_fields_collected(self, build_program):
        program = build_program(
            {
                "pkg/mod.py": (
                    'SCHEMA_ID = "repro.x/v1"\n'
                    "class Point:\n"
                    "    x: int\n"
                    "    y: int\n"
                    "    def norm(self):\n"
                    "        return self.x\n"
                ),
            }
        )
        module = program.modules["mod"]
        assert "SCHEMA_ID" in module.constants
        klass = module.classes["Point"]
        assert klass.fields == ["x", "y"]
        assert "mod.Point.norm" in program.functions
