"""Nondeterminism taint: sources, interprocedural flow, sanitizers,
allowlist boundaries, sinks."""


def _flows(result):
    return [f for f in result.findings if f.rule == "NondeterminismFlow"]


class TestSourceToSink:
    def test_unsorted_dict_iteration_reaches_payload(self, program_lint):
        result = program_lint(
            {
                "pkg/report.py": """
                def _rows(d):
                    out = []
                    for k, v in d.items():
                        out.append([k, v])
                    return out

                def build(d):
                    return {"schema": "repro.x/v1", "rows": _rows(d)}
                """,
            },
            rules=["NondeterminismFlow"],
        )
        flows = _flows(result)
        assert len(flows) == 1
        assert "dict-order" in flows[0].message
        assert "via report._rows" in flows[0].message
        assert "`rows`" in flows[0].message

    def test_wall_clock_reaches_fingerprint(self, program_lint):
        result = program_lint(
            {
                "pkg/fp.py": """
                import hashlib
                import time

                def fingerprint(payload):
                    stamp = time.perf_counter()
                    return hashlib.sha256(str(stamp).encode()).hexdigest()
                """,
            },
            rules=["NondeterminismFlow"],
        )
        flows = _flows(result)
        assert len(flows) == 1
        assert "time" in flows[0].message
        assert "fingerprint input" in flows[0].message

    def test_set_iteration_reaches_memo_key(self, program_lint):
        result = program_lint(
            {
                "pkg/memo.py": """
                def cached(memo, names):
                    key = tuple({n for n in names})
                    return memo.get_or_compute(key, lambda: 1)
                """,
            },
            rules=["NondeterminismFlow"],
        )
        flows = _flows(result)
        assert len(flows) == 1
        assert "memo key" in flows[0].message

    def test_pid_reaches_baseline_comparison(self, program_lint):
        result = program_lint(
            {
                "pkg/gate.py": """
                import os

                def compare_reports(a, b):
                    return a == b

                def gate(baseline):
                    current = {"pid": os.getpid()}
                    return compare_reports(baseline, current)
                """,
            },
            rules=["NondeterminismFlow"],
        )
        flows = _flows(result)
        assert len(flows) == 1
        assert "baseline comparison" in flows[0].message
        assert "process-identity" in flows[0].message

    def test_fs_order_propagates_through_return(self, program_lint):
        result = program_lint(
            {
                "pkg/scan.py": """
                import os

                def _names(root):
                    return os.listdir(root)

                def manifest(root):
                    return {"schema": "repro.x/v1", "names": _names(root)}
                """,
            },
            rules=["NondeterminismFlow"],
        )
        flows = _flows(result)
        assert len(flows) == 1
        assert "fs-order" in flows[0].message
        assert "via scan._names" in flows[0].message


class TestSanitizers:
    def test_sorted_clears_order_taint(self, program_lint):
        result = program_lint(
            {
                "pkg/report.py": """
                def build(d):
                    rows = sorted(d.items())
                    return {"schema": "repro.x/v1", "rows": rows}
                """,
            },
            rules=["NondeterminismFlow"],
        )
        assert _flows(result) == []

    def test_sorted_does_not_clear_time_taint(self, program_lint):
        result = program_lint(
            {
                "pkg/report.py": """
                import time

                def build():
                    stamps = sorted([time.time()])
                    return {"schema": "repro.x/v1", "t": stamps}
                """,
            },
            rules=["NondeterminismFlow"],
        )
        assert len(_flows(result)) == 1

    def test_list_sort_canonicalises_in_place(self, program_lint):
        result = program_lint(
            {
                "pkg/report.py": """
                def build(d):
                    rows = list(d.keys())
                    rows.sort()
                    return {"schema": "repro.x/v1", "rows": rows}
                """,
            },
            rules=["NondeterminismFlow"],
        )
        assert _flows(result) == []

    def test_len_collapses_order(self, program_lint):
        result = program_lint(
            {
                "pkg/report.py": """
                def build(d):
                    return {"schema": "repro.x/v1", "n": len(d.keys())}
                """,
            },
            rules=["NondeterminismFlow"],
        )
        assert _flows(result) == []

    def test_strip_volatile_clears_everything(self, program_lint):
        result = program_lint(
            {
                "pkg/report.py": """
                import time

                def strip_volatile(payload):
                    return payload

                def build():
                    raw = {"wall": time.time()}
                    return {"schema": "repro.x/v1", "body": strip_volatile(raw)}
                """,
            },
            rules=["NondeterminismFlow"],
        )
        assert _flows(result) == []

    def test_json_dumps_sort_keys_clears_dict_order(self, program_lint):
        result = program_lint(
            {
                "pkg/report.py": """
                import json

                def build(d):
                    blob = json.dumps(dict(d.items()), sort_keys=True)
                    return {"schema": "repro.x/v1", "blob": blob}
                """,
            },
            rules=["NondeterminismFlow"],
        )
        assert _flows(result) == []

    def test_sum_preserves_order_taint(self, program_lint):
        # Float accumulation over an unordered collection is
        # order-dependent; sum() must NOT sanitize.
        result = program_lint(
            {
                "pkg/report.py": """
                def build(d):
                    total = sum(d.values())
                    return {"schema": "repro.x/v1", "total": total}
                """,
            },
            rules=["NondeterminismFlow"],
        )
        assert len(_flows(result)) == 1


class TestAllowlistBoundaries:
    def test_allowed_payload_key_carries_taint_silently(self, program_lint):
        result = program_lint(
            {
                "pkg/report.py": """
                import time

                def build():
                    return {"schema": "repro.x/v1", "wall_seconds": time.time()}
                """,
            },
            rules=["NondeterminismFlow"],
        )
        assert _flows(result) == []

    def test_volatile_channel_functions_return_clean(self, program_lint):
        result = program_lint(
            {
                "pkg/obs/profiler.py": """
                import time

                def sample():
                    return {"wall": time.time()}
                """,
                "pkg/report.py": """
                from obs.profiler import sample

                def build():
                    return {"schema": "repro.x/v1", "host": sample()}
                """,
            },
            rules=["NondeterminismFlow"],
        )
        assert _flows(result) == []

    def test_sinks_inside_volatile_channels_not_reported(self, program_lint):
        result = program_lint(
            {
                "pkg/obs/profiler.py": """
                import time

                def snapshot():
                    return {"schema": "repro.x/v1", "wall": time.time()}
                """,
            },
            rules=["NondeterminismFlow"],
        )
        assert _flows(result) == []

    def test_suppression_comment_silences_program_finding(self, program_lint):
        result = program_lint(
            {
                "pkg/report.py": """
                import time

                def build():
                    return {
                        "schema": "repro.x/v1",
                        "t": time.time(),  # lint: disable=NondeterminismFlow
                    }
                """,
            },
            rules=["NondeterminismFlow"],
        )
        assert _flows(result) == []
        assert result.suppressed == 1


class TestFindingQuality:
    def test_finding_names_function_and_witness_chain(self, program_lint):
        result = program_lint(
            {
                "pkg/report.py": """
                import time

                def _stamp():
                    return time.perf_counter()

                def build():
                    return {"schema": "repro.x/v1", "t": _stamp()}
                """,
            },
            rules=["NondeterminismFlow"],
        )
        flows = _flows(result)
        assert len(flows) == 1
        message = flows[0].message
        assert "`report.build`" in message
        assert "time.perf_counter(...)" in message
        assert "via report._stamp" in message

    def test_each_sink_reported_once(self, program_lint):
        result = program_lint(
            {
                "pkg/report.py": """
                def build(d):
                    out = []
                    for k in d.keys():
                        out.append(k)
                    return {"schema": "repro.x/v1", "rows": out}
                """,
            },
            rules=["NondeterminismFlow"],
        )
        assert len(_flows(result)) == 1
