"""Findings must not depend on the order files are visited.

``Program.build`` sorts its input and witness chains merge to the
deterministic minimum, so any permutation of the same file set must
produce byte-identical findings.  Hypothesis drives the permutations.
"""

import ast
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.program.schema import SchemaLiteralConsistency
from repro.lint.program.symbols import Program
from repro.lint.program.taint import NondeterminismFlow

FILES = [
    (
        "pkg/report.py",
        """
        from walk import names
        from stamp import now

        def build(d):
            return {
                "schema": "repro.x/v1",
                "rows": [[k, v] for k, v in d.items()],
                "names": names("."),
                "t": now(),
            }
        """,
    ),
    (
        "pkg/walk.py",
        """
        import os

        def names(root):
            return os.listdir(root)
        """,
    ),
    (
        "pkg/stamp.py",
        """
        import time

        def now():
            return time.perf_counter()
        """,
    ),
    (
        "pkg/schema_home.py",
        """
        SCHEMA_ID = "repro.x/v1"

        def validate(payload):
            return payload.get("schema") == SCHEMA_ID
        """,
    ),
    (
        "pkg/drift.py",
        """
        def emit():
            return {"schema": "repro.x/v3"}
        """,
    ),
]


def _findings(ordered):
    parsed = [
        (path, ast.parse(textwrap.dedent(code))) for path, code in ordered
    ]
    program = Program.build(parsed, baseline_dirs=[])
    found = list(NondeterminismFlow().check(program))
    found += list(SchemaLiteralConsistency().check(program))
    return sorted(
        (f.path, f.line, f.col, f.rule, f.message) for f in found
    )


BASELINE = _findings(FILES)


@settings(max_examples=25, deadline=None)
@given(order=st.permutations(FILES))
def test_findings_are_independent_of_file_visit_order(order):
    assert _findings(order) == BASELINE


def test_baseline_fixture_actually_finds_violations():
    # Guard against the permutation test passing vacuously.
    rules = {entry[3] for entry in BASELINE}
    assert "NondeterminismFlow" in rules
    assert "SchemaLiteralConsistency" in rules
