"""Schema-literal consistency: drift, homes, producers vs validators,
committed baselines."""

import json


def _schema_findings(result):
    return [
        f for f in result.findings if f.rule == "SchemaLiteralConsistency"
    ]


WELL_FORMED = {
    "pkg/report.py": """
    SCHEMA_ID = "repro.demo/v1.1"

    ACCEPTED_SCHEMA_IDS = ("repro.demo/v1", SCHEMA_ID)

    def build():
        return {"schema": SCHEMA_ID}

    def validate(payload):
        if payload.get("schema") not in ACCEPTED_SCHEMA_IDS:
            raise ValueError(payload)
    """,
}


class TestConsistentFamilies:
    def test_well_formed_family_is_clean(self, program_lint):
        result = program_lint(
            dict(WELL_FORMED), rules=["SchemaLiteralConsistency"]
        )
        assert _schema_findings(result) == []

    def test_accepted_tuple_widens_legal_versions(self, program_lint):
        files = dict(WELL_FORMED)
        files["pkg/loader.py"] = """
        def load_legacy(payload):
            return payload.get("schema") == "repro.demo/v1"
        """
        result = program_lint(files, rules=["SchemaLiteralConsistency"])
        assert _schema_findings(result) == []


class TestViolations:
    def test_version_drift_from_validator(self, program_lint):
        files = dict(WELL_FORMED)
        files["pkg/emitter.py"] = """
        def emit():
            return {"schema": "repro.demo/v2"}
        """
        result = program_lint(files, rules=["SchemaLiteralConsistency"])
        findings = _schema_findings(result)
        assert len(findings) == 1
        assert findings[0].path.endswith("pkg/emitter.py")
        assert "drifts" in findings[0].message
        assert "repro.demo/v2" in findings[0].message

    def test_schema_id_with_no_declaring_constant(self, program_lint):
        result = program_lint(
            {
                "pkg/emitter.py": """
                def emit():
                    return {"schema": "repro.orphan/v1"}
                """,
            },
            rules=["SchemaLiteralConsistency"],
        )
        findings = _schema_findings(result)
        assert len(findings) == 1
        assert "no declaring" in findings[0].message

    def test_producer_with_no_validator(self, program_lint):
        result = program_lint(
            {
                "pkg/emitter.py": """
                SCHEMA_ID = "repro.ungated/v1"

                def emit():
                    return {"schema": SCHEMA_ID}
                """,
            },
            rules=["SchemaLiteralConsistency"],
        )
        findings = _schema_findings(result)
        assert len(findings) == 1
        assert "no validate" in findings[0].message

    def test_validator_with_no_producer(self, program_lint):
        result = program_lint(
            {
                "pkg/checker.py": """
                SCHEMA_ID = "repro.dead/v1"

                def validate(payload):
                    return payload.get("schema") == SCHEMA_ID
                """,
            },
            rules=["SchemaLiteralConsistency"],
        )
        findings = _schema_findings(result)
        assert len(findings) == 1
        assert "no producer" in findings[0].message

    def test_family_declared_in_two_modules(self, program_lint):
        files = dict(WELL_FORMED)
        files["pkg/rival.py"] = """
        RIVAL_SCHEMA_ID = "repro.demo/v1.2"

        def emit():
            return {"schema": RIVAL_SCHEMA_ID}
        """
        result = program_lint(files, rules=["SchemaLiteralConsistency"])
        messages = [f.message for f in _schema_findings(result)]
        assert any("multiple modules" in m for m in messages)


class TestBaselines:
    def test_baseline_carrying_stale_version_is_flagged(
        self, program_lint, tmp_path
    ):
        baseline_dir = tmp_path / "benchmarks" / "baselines"
        baseline_dir.mkdir(parents=True)
        (baseline_dir / "old.json").write_text(
            json.dumps({"schema": "repro.demo/v0", "totals": {}})
        )
        result = program_lint(
            dict(WELL_FORMED),
            rules=["SchemaLiteralConsistency"],
            baseline_dirs=[baseline_dir],
        )
        findings = _schema_findings(result)
        assert len(findings) == 1
        assert "old.json" in findings[0].message
        assert "repro.demo/v0" in findings[0].message

    def test_baseline_with_accepted_version_is_clean(
        self, program_lint, tmp_path
    ):
        baseline_dir = tmp_path / "benchmarks" / "baselines"
        baseline_dir.mkdir(parents=True)
        (baseline_dir / "ok.json").write_text(
            json.dumps({"schema": "repro.demo/v1"})
        )
        result = program_lint(
            dict(WELL_FORMED),
            rules=["SchemaLiteralConsistency"],
            baseline_dirs=[baseline_dir],
        )
        assert _schema_findings(result) == []

    def test_unknown_family_in_baseline_is_skipped(
        self, program_lint, tmp_path
    ):
        # Partial-tree runs must not false-positive on families whose
        # home module was not scanned.
        baseline_dir = tmp_path / "benchmarks" / "baselines"
        baseline_dir.mkdir(parents=True)
        (baseline_dir / "foreign.json").write_text(
            json.dumps({"schema": "repro.elsewhere/v9"})
        )
        result = program_lint(
            dict(WELL_FORMED),
            rules=["SchemaLiteralConsistency"],
            baseline_dirs=[baseline_dir],
        )
        assert _schema_findings(result) == []
