"""Call graph: edges through imports, methods, closures; reachability."""

from repro.lint.program.callgraph import CallGraph


def _graph(build_program, files):
    return CallGraph.build(build_program(files))


class TestEdges:
    def test_direct_and_imported_calls(self, build_program):
        graph = _graph(
            build_program,
            {
                "pkg/util.py": "def helper():\n    return 1\n",
                "pkg/main.py": (
                    "from util import helper\n"
                    "def outer():\n"
                    "    return inner() + helper()\n"
                    "def inner():\n"
                    "    return 1\n"
                ),
            },
        )
        assert graph.callees("main.outer") == ["main.inner", "util.helper"]
        assert graph.callers("util.helper") == ["main.outer"]

    def test_self_method_call_resolves(self, build_program):
        graph = _graph(
            build_program,
            {
                "pkg/mod.py": (
                    "class Model:\n"
                    "    def run(self):\n"
                    "        return self.step()\n"
                    "    def step(self):\n"
                    "        return 1\n"
                ),
            },
        )
        assert graph.callees("mod.Model.run") == ["mod.Model.step"]

    def test_external_targets_recorded(self, build_program):
        graph = _graph(
            build_program,
            {
                "pkg/main.py": (
                    "import time\n"
                    "def stamp():\n"
                    "    return time.perf_counter()\n"
                ),
            },
        )
        assert graph.external_targets("main.stamp") == [
            "time.perf_counter"
        ]

    def test_closure_calls_attributed_to_enclosing_function(
        self, build_program
    ):
        graph = _graph(
            build_program,
            {
                "pkg/util.py": "def helper():\n    return 1\n",
                "pkg/main.py": (
                    "from util import helper\n"
                    "def outer():\n"
                    "    def closure():\n"
                    "        return helper()\n"
                    "    return closure()\n"
                ),
            },
        )
        assert "util.helper" in graph.callees("main.outer")


class TestReachability:
    def test_transitive_closure(self, build_program):
        graph = _graph(
            build_program,
            {
                "pkg/mod.py": (
                    "def a():\n    return b()\n"
                    "def b():\n    return c()\n"
                    "def c():\n    return 1\n"
                    "def unrelated():\n    return 2\n"
                ),
            },
        )
        assert graph.reachable_from("mod.a") == {"mod.b", "mod.c"}
        assert graph.reachable_from("mod.c") == set()

    def test_cycles_terminate(self, build_program):
        graph = _graph(
            build_program,
            {
                "pkg/mod.py": (
                    "def ping():\n    return pong()\n"
                    "def pong():\n    return ping()\n"
                ),
            },
        )
        assert graph.reachable_from("mod.ping") == {"mod.ping", "mod.pong"}
