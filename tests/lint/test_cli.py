"""``python -m repro lint`` CLI: exit codes, JSON output, rule selection."""

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.lint import rule_names, validate_report

SRC = Path(repro.__file__).resolve().parent


def _seed_violation(tmp_path):
    target = tmp_path / "perf" / "primitives.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        textwrap.dedent(
            """
            def cost(limbs):
                dram_bytes = 0
                dram_bytes += 8 * limbs
                return dram_bytes
            """
        )
    )
    return target


class TestLintCommand:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        assert "clean:" in capsys.readouterr().out

    def test_violation_exits_one_and_names_rule_file_line(
        self, tmp_path, capsys
    ):
        _seed_violation(tmp_path)
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "LedgerDiscipline" in out
        assert "perf/primitives.py:4:5" in out

    def test_json_report_validates(self, tmp_path, capsys):
        _seed_violation(tmp_path)
        assert main(["lint", "--json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        validate_report(payload)
        assert payload["counts"] == {"LedgerDiscipline": 1}

    def test_rule_selection(self, tmp_path, capsys):
        _seed_violation(tmp_path)
        # Only the units rule runs, so the ledger violation is invisible.
        assert main(["lint", "--rule", "UnitsHygiene", str(tmp_path)]) == 0
        payload_rules = capsys.readouterr().out
        assert "clean" in payload_rules

    def test_unknown_rule_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown rule"):
            main(["lint", "--rule", "NoSuchRule", str(tmp_path)])

    def test_missing_path_is_usage_error(self):
        with pytest.raises(SystemExit, match="no such file"):
            main(["lint", "/nonexistent/definitely-not-here"])

    def test_list_rules_prints_registry(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in rule_names():
            assert name in out

    def test_syntax_error_reported_as_finding(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert "SyntaxError" in capsys.readouterr().out
