"""``python -m repro lint`` CLI: exit codes, JSON output, rule selection."""

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.lint import rule_names, validate_report

SRC = Path(repro.__file__).resolve().parent


def _seed_violation(tmp_path):
    target = tmp_path / "perf" / "primitives.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        textwrap.dedent(
            """
            def cost(limbs):
                dram_bytes = 0
                dram_bytes += 8 * limbs
                return dram_bytes
            """
        )
    )
    return target


class TestLintCommand:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        assert "clean:" in capsys.readouterr().out

    def test_violation_exits_one_and_names_rule_file_line(
        self, tmp_path, capsys
    ):
        _seed_violation(tmp_path)
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "LedgerDiscipline" in out
        assert "perf/primitives.py:4:5" in out

    def test_json_report_validates(self, tmp_path, capsys):
        _seed_violation(tmp_path)
        assert main(["lint", "--json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        validate_report(payload)
        assert payload["counts"] == {"LedgerDiscipline": 1}

    def test_rule_selection(self, tmp_path, capsys):
        _seed_violation(tmp_path)
        # Only the units rule runs, so the ledger violation is invisible.
        assert main(["lint", "--rule", "UnitsHygiene", str(tmp_path)]) == 0
        payload_rules = capsys.readouterr().out
        assert "clean" in payload_rules

    def test_unknown_rule_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown rule"):
            main(["lint", "--rule", "NoSuchRule", str(tmp_path)])

    def test_missing_path_is_usage_error(self):
        with pytest.raises(SystemExit, match="no such file"):
            main(["lint", "/nonexistent/definitely-not-here"])

    def test_list_rules_prints_registry(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in rule_names():
            assert name in out

    def test_syntax_error_reported_as_finding(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert "SyntaxError" in capsys.readouterr().out


def _seed_program_violation(tmp_path):
    target = tmp_path / "obs" / "report.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        textwrap.dedent(
            """
            def build(d):
                rows = []
                for k, v in d.items():
                    rows.append([k, v])
                return {"schema": "repro.x/v1", "rows": rows}

            SCHEMA_ID = "repro.x/v1"

            def validate(payload):
                return payload.get("schema") == SCHEMA_ID
            """
        )
    )
    return target


class TestProgramFlag:
    def test_program_pass_catches_taint_flow(self, tmp_path, capsys):
        _seed_program_violation(tmp_path)
        assert main(["lint", "--program", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "NondeterminismFlow" in out

    def test_without_flag_program_rules_stay_off(self, tmp_path, capsys):
        _seed_program_violation(tmp_path)
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_selecting_program_rule_without_flag_is_usage_error(
        self, tmp_path
    ):
        with pytest.raises(SystemExit, match="--program"):
            main(["lint", "--rule", "NondeterminismFlow", str(tmp_path)])

    def test_program_rule_selection_with_flag(self, tmp_path, capsys):
        _seed_program_violation(tmp_path)
        code = main(
            [
                "lint",
                "--program",
                "--rule",
                "NondeterminismFlow",
                str(tmp_path),
            ]
        )
        assert code == 1
        assert "NondeterminismFlow" in capsys.readouterr().out


class TestChangedOnly:
    def test_second_run_is_replayed_from_cache(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "mod.py").write_text("x = 1\n")
        assert main(["lint", "--changed-only", "tree"]) == 0
        first = capsys.readouterr().out
        assert "[cached]" not in first
        assert main(["lint", "--changed-only", "tree"]) == 0
        second = capsys.readouterr().out
        assert "[cached]" in second
        assert (tmp_path / ".lint_cache").is_dir()

    def test_edit_invalidates_cache(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        tree = tmp_path / "tree"
        tree.mkdir()
        target = tree / "mod.py"
        target.write_text("x = 1\n")
        assert main(["lint", "--changed-only", "tree"]) == 0
        capsys.readouterr()
        target.write_text("x = 2\n")
        assert main(["lint", "--changed-only", "tree"]) == 0
        assert "[cached]" not in capsys.readouterr().out


class TestFormats:
    def test_sarif_to_stdout(self, tmp_path, capsys):
        _seed_violation(tmp_path)
        assert main(["lint", "--format", "sarif", str(tmp_path)]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"][0]["ruleId"] == "LedgerDiscipline"

    def test_out_writes_file_and_prints_text_summary(
        self, tmp_path, capsys
    ):
        _seed_violation(tmp_path)
        out_file = tmp_path / "lint.sarif"
        code = main(
            [
                "lint",
                "--format",
                "sarif",
                "--out",
                str(out_file),
                str(tmp_path),
            ]
        )
        assert code == 1
        log = json.loads(out_file.read_text())
        assert log["version"] == "2.1.0"
        # stdout stays human-readable.
        assert "LedgerDiscipline" in capsys.readouterr().out

    def test_json_format_flag_matches_json_switch(self, tmp_path, capsys):
        _seed_violation(tmp_path)
        assert main(["lint", "--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        validate_report(payload)
