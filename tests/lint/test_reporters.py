"""Reporter output: text rendering and JSON schema round-trip."""

import json

import pytest

from repro.lint import (
    SCHEMA_VERSION,
    Finding,
    LintResult,
    render_json,
    render_text,
    report_dict,
    validate_report,
)
from repro.lint.reporters import load_findings


def _result():
    return LintResult(
        findings=[
            Finding(
                rule="LedgerDiscipline",
                path="src/repro/perf/primitives.py",
                line=12,
                col=5,
                message="raw accumulation",
            ),
            Finding(
                rule="UnitsHygiene",
                path="src/repro/perf/matvec.py",
                line=3,
                col=1,
                message="units must agree",
            ),
        ],
        files=["src/repro/perf/primitives.py", "src/repro/perf/matvec.py"],
        rules=["LedgerDiscipline", "UnitsHygiene"],
        suppressed=1,
    )


class TestTextReporter:
    def test_findings_rendered_as_path_line_col(self):
        text = render_text(_result())
        assert (
            "src/repro/perf/primitives.py:12:5: LedgerDiscipline: "
            "raw accumulation" in text
        )
        assert text.endswith("2 finding(s) in 2 file(s) (1 suppressed)")

    def test_clean_summary(self):
        text = render_text(LintResult(files=["a.py"], rules=["UnitsHygiene"]))
        assert text == "clean: 1 file(s) linted"


class TestJsonReporter:
    def test_schema_fields(self):
        payload = report_dict(_result())
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["files"] == 2
        assert payload["suppressed"] == 1
        assert payload["counts"] == {"LedgerDiscipline": 1, "UnitsHygiene": 1}
        assert len(payload["findings"]) == 2

    def test_round_trip(self):
        result = _result()
        payload = json.loads(render_json(result))
        validate_report(payload)
        assert load_findings(payload) == result.findings

    def test_validate_accepts_empty_report(self):
        payload = report_dict(LintResult(rules=["UnitsHygiene"]))
        validate_report(payload)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("schema"),
            lambda d: d.update(schema="repro.lint/v999"),
            lambda d: d.update(findings="not-a-list"),
            lambda d: d.update(files=-1),
            lambda d: d.update(files=True),
            lambda d: d.pop("counts"),
            lambda d: d["findings"].append({"rule": "X"}),
            lambda d: d["findings"].append(
                {
                    "rule": "X",
                    "path": "a.py",
                    "line": "12",
                    "col": 1,
                    "message": "m",
                }
            ),
        ],
    )
    def test_validate_rejects_malformed_payloads(self, mutate):
        payload = report_dict(_result())
        mutate(payload)
        with pytest.raises(ValueError):
            validate_report(payload)

    def test_validate_rejects_non_object(self):
        with pytest.raises(ValueError):
            validate_report(["not", "an", "object"])


class TestSarifReporter:
    def test_sarif_log_structure(self):
        from repro.lint import render_sarif

        log = json.loads(render_sarif(_result()))
        assert log["version"] == "2.1.0"
        assert len(log["runs"]) == 1
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert len(run["results"]) == 2

    def test_results_carry_location_and_rule_index(self):
        from repro.lint import render_sarif

        log = json.loads(render_sarif(_result()))
        run = log["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for entry in run["results"]:
            location = entry["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"].endswith(".py")
            assert location["region"]["startLine"] > 0
            assert location["region"]["startColumn"] > 0
            assert rules[entry["ruleIndex"]]["id"] == entry["ruleId"]

    def test_registered_rules_carry_descriptions(self):
        from repro.lint import all_rules, render_sarif, run_lint

        result = run_lint([], all_rules())
        log = json.loads(render_sarif(result))
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert {r["id"] for r in rules} >= {
            "LedgerDiscipline",
            "UnitsHygiene",
        }
        for rule in rules:
            assert rule["shortDescription"]["text"]

    def test_clean_run_has_empty_results(self):
        from repro.lint import render_sarif

        log = json.loads(
            render_sarif(LintResult(files=["a.py"], rules=["UnitsHygiene"]))
        )
        assert log["runs"][0]["results"] == []
