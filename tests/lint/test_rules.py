"""Positive/negative fixture snippets for every domain rule."""

import pytest


def rules_of(result):
    return [(f.rule, f.line) for f in result.findings]


# ----------------------------------------------------------------------
# LedgerDiscipline
# ----------------------------------------------------------------------
class TestLedgerDiscipline:
    def test_raw_byte_accumulation_in_perf_flagged(self, lint_tree):
        result = lint_tree(
            {
                "perf/primitives.py": """
                def cost(limbs):
                    dram_bytes = 0
                    dram_bytes += 8 * limbs
                    return dram_bytes
                """
            },
            rules=["LedgerDiscipline"],
        )
        assert rules_of(result) == [("LedgerDiscipline", 4)]
        assert "dram_bytes" in result.findings[0].message

    def test_cost_field_mutation_flagged_outside_perf_too(self, lint_tree):
        result = lint_tree(
            {
                "ckks/evaluator.py": """
                def relinearize(report, extra):
                    report.ops = extra
                """
            },
            rules=["LedgerDiscipline"],
        )
        assert rules_of(result) == [("LedgerDiscipline", 3)]

    def test_augmented_attribute_mutation_flagged(self, lint_tree):
        result = lint_tree(
            {
                "apps/workload.py": """
                def fold(report, cost):
                    report.traffic += cost.traffic
                """
            },
            rules=["LedgerDiscipline"],
        )
        assert rules_of(result) == [("LedgerDiscipline", 3)]

    @pytest.mark.parametrize(
        "core_file",
        [
            "perf/events.py",
            "perf/ledger.py",
            "perf/cache.py",
            "memsim/accounting.py",
        ],
    )
    def test_ledger_core_files_are_exempt(self, lint_tree, core_file):
        result = lint_tree(
            {
                core_file: """
                def accumulate(self, other):
                    self.ops = self.ops + other.ops
                    total_bytes = 0
                    total_bytes += other.traffic.total
                    return total_bytes
                """
            },
            rules=["LedgerDiscipline"],
        )
        assert result.clean

    def test_fresh_costreport_style_is_clean(self, lint_tree):
        result = lint_tree(
            {
                "perf/primitives.py": """
                def add(self, limbs):
                    ops = self.op_count(adds=2 * limbs)
                    traffic = self._traffic(ct_read=4 * limbs)
                    return self.report(ops, traffic)
                """
            },
            rules=["LedgerDiscipline"],
        )
        assert result.clean

    def test_plain_counter_accumulation_outside_perf_is_clean(self, lint_tree):
        # Raw-name accumulation only matters inside perf/ and sweep/ code.
        result = lint_tree(
            {
                "report/tables.py": """
                def total(rows):
                    total_ops = 0
                    for row in rows:
                        total_ops += row.ops
                    return total_ops
                """
            },
            rules=["LedgerDiscipline"],
        )
        assert result.clean

    def test_raw_byte_accumulation_in_sweep_flagged(self, lint_tree):
        # PR 5 extends the perf/ clause to sweep/: evaluators aggregate
        # cost reports across grid points, exactly where a shadow
        # accumulator would hide.
        result = lint_tree(
            {
                "sweep/evaluators.py": """
                def total(rows):
                    traffic_bytes = 0
                    for row in rows:
                        traffic_bytes += row["traffic_total"]
                    return traffic_bytes
                """
            },
            rules=["LedgerDiscipline"],
        )
        assert rules_of(result) == [("LedgerDiscipline", 5)]
        assert "sweep/" in result.findings[0].message


# ----------------------------------------------------------------------
# SpanLabelStability
# ----------------------------------------------------------------------
class TestSpanLabelStability:
    @pytest.mark.parametrize(
        "label",
        [
            'f"CoeffToSlot {i}"',
            '"CoeffToSlot %d" % i',
            '"CoeffToSlot {}".format(i)',
            '"CoeffToSlot " + str(i)',
        ],
    )
    def test_dynamic_labels_flagged(self, lint_tree, label):
        result = lint_tree(
            {
                "perf/bootstrap.py": f"""
                def run(obs, i):
                    with obs.span({label}):
                        pass
                """
            },
            rules=["SpanLabelStability"],
        )
        assert [f.rule for f in result.findings] == ["SpanLabelStability"]
        assert result.findings[0].line == 3

    def test_static_label_with_attrs_is_clean(self, lint_tree):
        result = lint_tree(
            {
                "perf/bootstrap.py": """
                def run(obs, i, level):
                    with obs.span("CoeffToSlot:iter", iter=i, level=level):
                        pass
                """
            },
            rules=["SpanLabelStability"],
        )
        assert result.clean

    def test_plain_name_label_is_clean(self, lint_tree):
        # Labels bound from a static table are a legitimate pattern.
        result = lint_tree(
            {
                "apps/workload.py": """
                def run(obs, op_units):
                    for op_name, cost in op_units:
                        with obs.span(op_name, cost=cost):
                            pass
                """
            },
            rules=["SpanLabelStability"],
        )
        assert result.clean

    def test_module_level_span_helper_also_checked(self, lint_tree):
        result = lint_tree(
            {
                "ckks/bootstrap.py": """
                def run(span, k):
                    with span(f"EvalMod {k}"):
                        pass
                """
            },
            rules=["SpanLabelStability"],
        )
        assert len(result.findings) == 1


# ----------------------------------------------------------------------
# ExactArithPurity
# ----------------------------------------------------------------------
class TestExactArithPurity:
    def test_true_division_flagged_in_numth(self, lint_tree):
        result = lint_tree(
            {
                "numth/modular.py": """
                def half(a, q):
                    return (a / 2) % q
                """
            },
            rules=["ExactArithPurity"],
        )
        assert rules_of(result) == [("ExactArithPurity", 3)]

    def test_float_literal_and_builtin_flagged_in_ring(self, lint_tree):
        result = lint_tree(
            {
                "ring/conversion.py": """
                def approx(x):
                    scale = 0.5
                    return float(x) * scale
                """
            },
            rules=["ExactArithPurity"],
        )
        assert sorted(f.line for f in result.findings) == [3, 4]

    def test_inexact_math_and_numpy_flagged(self, lint_tree):
        result = lint_tree(
            {
                "numth/ntt.py": """
                import math
                import numpy as np

                def bits(n):
                    return math.log2(n)
                """
            },
            rules=["ExactArithPurity"],
        )
        assert sorted(f.line for f in result.findings) == [3, 6]

    def test_exact_math_subset_and_floordiv_are_clean(self, lint_tree):
        result = lint_tree(
            {
                "numth/primes.py": """
                import math

                def reduce(d, x, y, n):
                    d //= 2
                    return math.gcd(abs(x - y), n), math.isqrt(n)
                """
            },
            rules=["ExactArithPurity"],
        )
        assert result.clean

    def test_kernels_allow_numpy_but_stay_float_free(self, lint_tree):
        result = lint_tree(
            {
                "kernels/ntt.py": """
                import numpy as np

                def untwist(x, n):
                    return x * (1.0 / n)
                """
            },
            rules=["ExactArithPurity"],
        )
        # The numpy import is sanctioned in kernels/; the float literal
        # and the true division are not.
        assert all(f.line == 5 for f in result.findings)
        assert len(result.findings) == 2

    def test_floats_allowed_outside_exact_paths(self, lint_tree):
        result = lint_tree(
            {
                "hardware/roofline.py": """
                import math

                def seconds(ops, rate):
                    return ops / rate + math.log2(rate) * 0.0
                """
            },
            rules=["ExactArithPurity"],
        )
        assert result.clean


# ----------------------------------------------------------------------
# UnitsHygiene
# ----------------------------------------------------------------------
class TestUnitsHygiene:
    def test_cross_assignment_flagged(self, lint_tree):
        result = lint_tree(
            {
                "perf/matvec.py": """
                def leak(cost):
                    total_ops = cost.traffic.total
                    return total_ops
                """
            },
            rules=["UnitsHygiene"],
        )
        assert rules_of(result) == [("UnitsHygiene", 3)]

    def test_additive_mixing_flagged(self, lint_tree):
        result = lint_tree(
            {
                "hardware/runtime.py": """
                def combined(cost):
                    return cost.ops.total + cost.traffic.total
                """
            },
            rules=["UnitsHygiene"],
        )
        assert rules_of(result) == [("UnitsHygiene", 3)]

    def test_accessor_name_contract_flagged(self, lint_tree):
        result = lint_tree(
            {
                "perf/events.py": """
                class MemTraffic:
                    def total_bytes(self):
                        return self.mults + self.adds
                """
            },
            rules=["UnitsHygiene"],
        )
        assert [f.rule for f in result.findings] == ["UnitsHygiene"]

    def test_matching_units_and_derived_units_are_clean(self, lint_tree):
        result = lint_tree(
            {
                "perf/events.py": """
                def summarise(self, other, limb_bytes, limbs):
                    total_bytes = self.traffic.total + other.traffic.total
                    total_ops = self.ops.total - other.ops.total
                    intensity = total_ops / total_bytes
                    scaled_bytes = limb_bytes * limbs
                    return total_bytes, total_ops, intensity, scaled_bytes
                """
            },
            rules=["UnitsHygiene"],
        )
        assert result.clean

    def test_unknown_units_never_flagged(self, lint_tree):
        result = lint_tree(
            {
                "search/space.py": """
                def mix(a, b):
                    return a + b
                """
            },
            rules=["UnitsHygiene"],
        )
        assert result.clean


# ----------------------------------------------------------------------
# ConfigFlagCoverage
# ----------------------------------------------------------------------
_CONFIG = """
from dataclasses import dataclass


@dataclass(frozen=True)
class MADConfig:
    cache_o1: bool = False
    mod_down_merge: bool = False
"""


class TestConfigFlagCoverage:
    def test_dead_flag_reported_at_definition(self, lint_tree):
        result = lint_tree(
            {
                "perf/optimizations.py": _CONFIG,
                "perf/primitives.py": """
                def cost(config):
                    if config.cache_o1:
                        return 1
                    return 2
                """,
            },
            rules=["ConfigFlagCoverage"],
        )
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.rule == "ConfigFlagCoverage"
        assert finding.path.endswith("perf/optimizations.py")
        assert "mod_down_merge" in finding.message

    def test_all_flags_read_is_clean(self, lint_tree):
        result = lint_tree(
            {
                "perf/optimizations.py": _CONFIG,
                "perf/primitives.py": """
                def cost(config):
                    return (config.cache_o1, config.mod_down_merge)
                """,
            },
            rules=["ConfigFlagCoverage"],
        )
        assert result.clean

    def test_reads_in_defining_module_do_not_count(self, lint_tree):
        # __post_init__ validation reads are not model coverage.
        result = lint_tree(
            {
                "perf/optimizations.py": _CONFIG
                + """

    def __post_init__(self):
        assert not (self.mod_down_merge and not self.cache_o1)
                """,
            },
            rules=["ConfigFlagCoverage"],
        )
        assert {f.message.split("`")[1] for f in result.findings} == {
            "cache_o1",
            "mod_down_merge",
        }

    def test_reads_outside_perf_do_not_count(self, lint_tree):
        result = lint_tree(
            {
                "perf/optimizations.py": _CONFIG,
                "report/tables.py": """
                def cost(config):
                    return (config.cache_o1, config.mod_down_merge)
                """,
            },
            rules=["ConfigFlagCoverage"],
        )
        assert len(result.findings) == 2

    def test_reads_in_sweep_count_as_coverage(self, lint_tree):
        # PR 5 extends the read scope to sweep/: ablation evaluators
        # dispatch on the same flags the cost formulas consume.
        result = lint_tree(
            {
                "perf/optimizations.py": _CONFIG,
                "sweep/evaluators.py": """
                def evaluate(point, config):
                    return (config.cache_o1, config.mod_down_merge)
                """,
            },
            rules=["ConfigFlagCoverage"],
        )
        assert result.clean

    def test_no_madconfig_definition_is_clean(self, lint_tree):
        result = lint_tree(
            {
                "perf/primitives.py": """
                def cost(config):
                    return config.cache_o1
                """
            },
            rules=["ConfigFlagCoverage"],
        )
        assert result.clean


# ----------------------------------------------------------------------
# TraceDiscipline
# ----------------------------------------------------------------------
class TestTraceDiscipline:
    def test_direct_event_construction_flagged(self, lint_tree):
        result = lint_tree(
            {
                "memsim/schedules.py": """
                from repro.memsim.trace import Access

                def emit(events, block):
                    events.append(Access("r", "ct", block))
                """
            },
            rules=["TraceDiscipline"],
        )
        assert rules_of(result) == [("TraceDiscipline", 5)]
        assert "TraceRecorder" in result.findings[0].message

    @pytest.mark.parametrize(
        "event", ["BulkAccess", "PinEvent", "FlushEvent"]
    )
    def test_every_event_type_is_guarded(self, lint_tree, event):
        result = lint_tree(
            {
                "memsim/simulator.py": f"""
                from repro.memsim import trace

                def emit(events):
                    events.append(trace.{event}())
                """
            },
            rules=["TraceDiscipline"],
        )
        assert rules_of(result) == [("TraceDiscipline", 5)]

    def test_trace_module_may_construct_events(self, lint_tree):
        result = lint_tree(
            {
                "memsim/trace.py": """
                def read(self, block):
                    self._events.append(Access("r", "ct", block))
                """
            },
            rules=["TraceDiscipline"],
        )
        assert result.clean

    def test_isinstance_checks_are_not_construction(self, lint_tree):
        result = lint_tree(
            {
                "memsim/simulator.py": """
                from repro.memsim.trace import Access

                def replay(events):
                    return [e for e in events if isinstance(e, Access)]
                """
            },
            rules=["TraceDiscipline"],
        )
        assert result.clean

    def test_byte_accumulation_outside_accounting_flagged(self, lint_tree):
        result = lint_tree(
            {
                "memsim/simulator.py": """
                def replay(self, trace):
                    self.ct_read_bytes += trace.block_bytes
                """
            },
            rules=["TraceDiscipline"],
        )
        assert rules_of(result) == [("TraceDiscipline", 3)]
        assert "DramCounters" in result.findings[0].message

    def test_local_shadow_total_flagged(self, lint_tree):
        result = lint_tree(
            {
                "memsim/validate.py": """
                def total(trace):
                    simulated_bytes = 0
                    for event in trace:
                        simulated_bytes += 8
                    return simulated_bytes
                """
            },
            rules=["TraceDiscipline"],
        )
        assert rules_of(result) == [("TraceDiscipline", 5)]

    def test_accounting_module_may_accumulate(self, lint_tree):
        result = lint_tree(
            {
                "memsim/accounting.py": """
                def add_read(self, nbytes):
                    self.ct_read_bytes += nbytes
                """
            },
            rules=["TraceDiscipline"],
        )
        assert result.clean

    def test_accumulation_outside_memsim_not_this_rules_business(
        self, lint_tree
    ):
        result = lint_tree(
            {
                "apps/workload.py": """
                def total():
                    dram_bytes = 0
                    dram_bytes += 8
                    return dram_bytes
                """
            },
            rules=["TraceDiscipline"],
        )
        assert result.clean  # LedgerDiscipline territory, not TraceDiscipline

    def test_suppression_comment_respected(self, lint_tree):
        result = lint_tree(
            {
                "memsim/debug.py": """
                def probe(events, block):
                    from repro.memsim.trace import Access

                    events.append(Access("r", "ct", block))  # lint: disable=TraceDiscipline
                """
            },
            rules=["TraceDiscipline"],
        )
        assert result.clean
        assert result.suppressed == 1


# ----------------------------------------------------------------------
# TelemetryDiscipline
# ----------------------------------------------------------------------
class TestTelemetryDiscipline:
    def test_getrusage_outside_profiler_flagged(self, lint_tree):
        result = lint_tree(
            {
                "sweep/engine.py": """
                import resource

                def worker_rss():
                    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                """
            },
            rules=["TelemetryDiscipline"],
        )
        assert rules_of(result) == [("TelemetryDiscipline", 5)]
        assert "obs/profiler.py" in result.findings[0].message

    @pytest.mark.parametrize(
        "call",
        [
            "tracemalloc.start()",
            "tracemalloc.get_traced_memory()",
            "tracemalloc.reset_peak()",
            "psutil.Process()",
            "gc.get_stats()",
            "time.process_time()",
        ],
    )
    def test_every_sampling_api_is_guarded(self, lint_tree, call):
        module = call.split(".")[0]
        result = lint_tree(
            {
                "obs/export.py": f"""
                import {module}

                def sample():
                    return {call}
                """
            },
            rules=["TelemetryDiscipline"],
        )
        assert rules_of(result) == [("TelemetryDiscipline", 5)]

    def test_profiler_module_may_sample(self, lint_tree):
        result = lint_tree(
            {
                "obs/profiler.py": """
                import gc
                import resource
                import time
                import tracemalloc

                def sample():
                    tracemalloc.reset_peak()
                    return (
                        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
                        time.process_time(),
                        gc.get_stats(),
                    )
                """
            },
            rules=["TelemetryDiscipline"],
        )
        assert result.clean

    def test_other_gc_and_time_calls_are_fine(self, lint_tree):
        result = lint_tree(
            {
                "sweep/engine.py": """
                import gc
                import time

                def run():
                    gc.collect()
                    return time.perf_counter()
                """
            },
            rules=["TelemetryDiscipline"],
        )
        assert result.clean

    def test_schema_id_literal_outside_events_flagged(self, lint_tree):
        result = lint_tree(
            {
                "sweep/engine.py": """
                import json

                def emit(handle, data):
                    line = {"schema": "repro.obs.events/v1", "data": data}
                    handle.write(json.dumps(line))
                """
            },
            rules=["TelemetryDiscipline"],
        )
        assert rules_of(result) == [("TelemetryDiscipline", 5)]
        assert "EventLog" in result.findings[0].message

    def test_events_module_may_spell_schema_id(self, lint_tree):
        result = lint_tree(
            {
                "obs/events.py": """
                EVENTS_SCHEMA_ID = "repro.obs.events/v1"
                """
            },
            rules=["TelemetryDiscipline"],
        )
        assert result.clean

    def test_prose_mentions_are_not_schema_ids(self, lint_tree):
        result = lint_tree(
            {
                "cli.py": """
                HELP = "stream a repro.obs.events/v1 JSONL event log here"
                """
            },
            rules=["TelemetryDiscipline"],
        )
        assert result.clean


# ----------------------------------------------------------------------
# SimClockDiscipline
# ----------------------------------------------------------------------
class TestSimClockDiscipline:
    def test_import_time_in_serve_flagged(self, lint_tree):
        result = lint_tree(
            {
                "serve/simulator.py": """
                import time

                def stamp():
                    return time.time()
                """
            },
            rules=["SimClockDiscipline"],
        )
        assert rules_of(result) == [("SimClockDiscipline", 2)]
        assert "time" in result.findings[0].message

    def test_from_datetime_import_flagged(self, lint_tree):
        result = lint_tree(
            {
                "serve/report_rows.py": """
                from datetime import datetime
                """
            },
            rules=["SimClockDiscipline"],
        )
        assert rules_of(result) == [("SimClockDiscipline", 2)]
        assert "datetime" in result.findings[0].message

    def test_dotted_submodule_import_flagged(self, lint_tree):
        result = lint_tree(
            {
                "serve/clock.py": """
                import datetime.timezone
                """
            },
            rules=["SimClockDiscipline"],
        )
        assert rules_of(result) == [("SimClockDiscipline", 2)]

    def test_wall_clock_outside_serve_is_fine(self, lint_tree):
        result = lint_tree(
            {
                "obs/profiler.py": """
                import time

                def sample():
                    return time.monotonic()
                """
            },
            rules=["SimClockDiscipline"],
        )
        assert result.clean

    def test_clock_free_serve_module_is_clean(self, lint_tree):
        result = lint_tree(
            {
                "serve/stats.py": """
                import heapq
                import math

                def rank(q, n):
                    return math.ceil(q / 100.0 * n)
                """
            },
            rules=["SimClockDiscipline"],
        )
        assert result.clean

    def test_timeit_is_not_time(self, lint_tree):
        # Only the exact module roots are clock modules; a name that
        # merely starts with "time" must not match.
        result = lint_tree(
            {
                "serve/bench_helper.py": """
                import timeit
                """
            },
            rules=["SimClockDiscipline"],
        )
        assert result.clean


# ----------------------------------------------------------------------
# LedgerDiscipline / serve extension
# ----------------------------------------------------------------------
class TestLedgerDisciplineInServe:
    def test_raw_byte_accumulation_in_serve_flagged(self, lint_tree):
        result = lint_tree(
            {
                "serve/simulator.py": """
                def drain(events):
                    busy_bytes = 0
                    busy_bytes += 8
                    return busy_bytes
                """
            },
            rules=["LedgerDiscipline"],
        )
        assert rules_of(result) == [("LedgerDiscipline", 4)]
        assert "serve" in result.findings[0].message

    def test_cost_report_addition_in_serve_is_clean(self, lint_tree):
        result = lint_tree(
            {
                "serve/simulator.py": """
                def fold(total, cost):
                    total = total + cost
                    return total
                """
            },
            rules=["LedgerDiscipline"],
        )
        assert result.clean
