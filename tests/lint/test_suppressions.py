"""Suppression-comment handling: trailing, standalone, file-level."""

from repro.lint import SuppressionIndex


_VIOLATION = """
def cost(limbs):
    dram_bytes = 0
    dram_bytes += 8 * limbs{trailing}
    return dram_bytes
"""


class TestSuppressionComments:
    def test_trailing_comment_suppresses_its_line(self, lint_tree):
        result = lint_tree(
            {
                "perf/a.py": _VIOLATION.format(
                    trailing="  # lint: disable=LedgerDiscipline"
                )
            },
            rules=["LedgerDiscipline"],
        )
        assert result.clean
        assert result.suppressed == 1

    def test_standalone_comment_suppresses_next_line(self, lint_tree):
        result = lint_tree(
            {
                "perf/a.py": """
                def cost(limbs):
                    dram_bytes = 0
                    # lint: disable=LedgerDiscipline
                    dram_bytes += 8 * limbs
                    return dram_bytes
                """
            },
            rules=["LedgerDiscipline"],
        )
        assert result.clean
        assert result.suppressed == 1

    def test_file_level_disable(self, lint_tree):
        result = lint_tree(
            {
                "perf/a.py": """
                # lint: disable-file=LedgerDiscipline
                def cost(limbs):
                    dram_bytes = 0
                    dram_bytes += 8 * limbs
                    dram_bytes += 16 * limbs
                    return dram_bytes
                """
            },
            rules=["LedgerDiscipline"],
        )
        assert result.clean
        assert result.suppressed == 2

    def test_disable_all_suppresses_every_rule(self, lint_tree):
        result = lint_tree(
            {
                "perf/a.py": """
                # lint: disable-file=all
                def cost(report, obs, i):
                    report.ops = None
                    with obs.span(f"Phase {i}"):
                        pass
                """
            },
            rules=["LedgerDiscipline", "SpanLabelStability"],
        )
        assert result.clean
        assert result.suppressed == 2

    def test_other_rules_still_reported(self, lint_tree):
        result = lint_tree(
            {
                "perf/a.py": """
                def cost(report, obs, i):
                    report.ops = None  # lint: disable=SpanLabelStability
                """
            },
            rules=["LedgerDiscipline", "SpanLabelStability"],
        )
        assert [f.rule for f in result.findings] == ["LedgerDiscipline"]
        assert result.suppressed == 0

    def test_comma_separated_rule_list(self, lint_tree):
        result = lint_tree(
            {
                "perf/a.py": """
                def cost(report, obs, i):
                    # lint: disable=LedgerDiscipline, SpanLabelStability
                    report.ops = obs.span(f"Phase {i}")
                """
            },
            rules=["LedgerDiscipline", "SpanLabelStability"],
        )
        assert result.clean
        assert result.suppressed == 2

    def test_suppression_must_match_finding_line(self, lint_tree):
        result = lint_tree(
            {
                "perf/a.py": """
                def cost(limbs):
                    dram_bytes = 0  # lint: disable=LedgerDiscipline
                    dram_bytes += 8 * limbs
                    return dram_bytes
                """
            },
            rules=["LedgerDiscipline"],
        )
        assert len(result.findings) == 1


class TestSuppressionIndex:
    def test_directive_parsing(self):
        index = SuppressionIndex.from_source(
            "x = 1  # lint: disable=RuleA\n"
            "# lint: disable=RuleB\n"
            "y = 2\n"
            "# lint: disable-file=RuleC\n"
        )
        assert index.is_suppressed("RuleA", 1)
        assert not index.is_suppressed("RuleA", 2)
        assert index.is_suppressed("RuleB", 3)
        assert index.is_suppressed("RuleC", 999)
        assert not index.is_suppressed("RuleD", 1)

    def test_non_directive_comments_ignored(self):
        index = SuppressionIndex.from_source("x = 1  # plain comment\n")
        assert not index.is_suppressed("RuleA", 1)
