"""Self-check: the shipped tree satisfies its own invariants.

The acceptance bar for the linter is two-sided: ``src/repro`` must lint
clean, and a seeded violation in real model code must be caught with a
named rule, file and line.  Both directions are covered here so a rule
can neither rot into vacuity nor start rejecting the tree it ships with.
"""

from pathlib import Path

import pytest

import repro
from repro.lint import all_program_rules, all_rules, run_lint

SRC = Path(repro.__file__).resolve().parent


class TestTreeIsClean:
    def test_src_repro_lints_clean(self):
        result = run_lint([SRC], all_rules())
        assert result.clean, "\n".join(f.render() for f in result.findings)
        # Sanity: the run actually covered the package.
        assert len(result.files) > 50

    def test_src_repro_lints_clean_with_program_pass(self):
        result = run_lint(
            [SRC], all_rules(), program_rules=all_program_rules()
        )
        assert result.clean, "\n".join(f.render() for f in result.findings)

    def test_every_registered_rule_ran(self):
        result = run_lint(
            [SRC], all_rules(), program_rules=all_program_rules()
        )
        assert result.rules == [
            "ConfigFlagCoverage",
            "ExactArithPurity",
            "LedgerDiscipline",
            "SimClockDiscipline",
            "SpanLabelStability",
            "TelemetryDiscipline",
            "TraceDiscipline",
            "UnitsHygiene",
            "NondeterminismFlow",
            "SchemaLiteralConsistency",
        ]


class TestSeededViolations:
    """Mutating real shipped sources must trip the pass."""

    def _copy_with(self, tmp_path, relpath, appended):
        source = (SRC / relpath).read_text()
        target = tmp_path / "repro" / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source + appended)
        return target

    def test_raw_dram_bytes_accumulation_in_primitives(self, tmp_path):
        target = self._copy_with(
            tmp_path,
            "perf/primitives.py",
            "\n\ndef _leak(reports):\n"
            "    dram_bytes = 0\n"
            "    for report in reports:\n"
            "        dram_bytes += report.traffic.total\n"
            "    return dram_bytes\n",
        )
        result = run_lint([tmp_path], all_rules())
        culprits = [f for f in result.findings if f.rule == "LedgerDiscipline"]
        assert len(culprits) == 1
        assert culprits[0].path.endswith("perf/primitives.py")
        assert culprits[0].line == len(target.read_text().splitlines()) - 1

    def test_fstring_span_label_in_bootstrap(self, tmp_path):
        self._copy_with(
            tmp_path,
            "perf/bootstrap.py",
            "\n\ndef _bad(model):\n"
            "    for i in range(3):\n"
            '        with obs.span(f"CoeffToSlot {i}"):\n'
            "            pass\n",
        )
        result = run_lint([tmp_path], all_rules())
        culprits = [
            f for f in result.findings if f.rule == "SpanLabelStability"
        ]
        assert len(culprits) == 1
        assert culprits[0].path.endswith("perf/bootstrap.py")

    def test_float_division_in_ntt(self, tmp_path):
        self._copy_with(
            tmp_path,
            "numth/ntt.py",
            "\n\ndef _approx_scale(n):\n    return 1 / n\n",
        )
        result = run_lint([tmp_path], all_rules())
        culprits = [f for f in result.findings if f.rule == "ExactArithPurity"]
        assert len(culprits) == 1
        assert "division" in culprits[0].message

    def test_dead_madconfig_flag(self, tmp_path):
        # Copy the whole perf/ package, then add an unread flag.
        for path in (SRC / "perf").glob("*.py"):
            (tmp_path / "repro" / "perf").mkdir(parents=True, exist_ok=True)
            (tmp_path / "repro" / "perf" / path.name).write_text(
                path.read_text()
            )
        optimizations = tmp_path / "repro" / "perf" / "optimizations.py"
        patched = optimizations.read_text().replace(
            "key_compression: bool = False",
            "key_compression: bool = False\n    phantom_flag: bool = False",
            1,
        )
        assert "phantom_flag" in patched
        optimizations.write_text(patched)
        result = run_lint([tmp_path], all_rules())
        culprits = [
            f for f in result.findings if f.rule == "ConfigFlagCoverage"
        ]
        assert len(culprits) == 1
        assert "phantom_flag" in culprits[0].message

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            run_lint(["/nonexistent/definitely-not-here"], all_rules())


class TestSeededProgramViolations:
    """Mutating real shipped sources must trip the whole-program pass."""

    def _copy_with(self, tmp_path, relpath, appended):
        source = (SRC / relpath).read_text()
        target = tmp_path / "repro" / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source + appended)
        return target

    def _program_findings(self, tmp_path, rule):
        result = run_lint(
            [tmp_path], rules=[], program_rules=all_program_rules()
        )
        return [f for f in result.findings if f.rule == rule]

    def test_unsorted_dict_iteration_into_report_payload(self, tmp_path):
        self._copy_with(
            tmp_path,
            "obs/export.py",
            "\n\ndef _leaky_rows(d):\n"
            "    rows = []\n"
            "    for k, v in d.items():\n"
            "        rows.append([k, v])\n"
            "    return rows\n"
            "\n\ndef build_leaky_report(d):\n"
            '    return {"schema": SCHEMA_ID, "rows": _leaky_rows(d)}\n',
        )
        culprits = self._program_findings(tmp_path, "NondeterminismFlow")
        assert len(culprits) == 1
        assert culprits[0].path.endswith("obs/export.py")
        assert "dict-order" in culprits[0].message
        assert "rows" in culprits[0].message

    def test_schema_version_literal_drifting_from_validator(self, tmp_path):
        target = self._copy_with(
            tmp_path,
            "obs/export.py",
            "\n\ndef build_bumped_report():\n"
            '    return {"schema": "repro.obs.run_report/v2"}\n',
        )
        culprits = self._program_findings(
            tmp_path, "SchemaLiteralConsistency"
        )
        assert len(culprits) == 1
        assert culprits[0].path.endswith("obs/export.py")
        assert culprits[0].line == len(target.read_text().splitlines())
        assert "drifts" in culprits[0].message
