import pytest
from hypothesis import given, strategies as st

from repro.params import BASELINE_JUNG, MAD_OPTIMAL, CkksParams, toy_params


class TestGeometry:
    def test_ring_degree_and_slots(self):
        p = toy_params(log_n=5)
        assert p.ring_degree == 32
        assert p.slots == 16

    def test_limb_bytes_full_scale(self):
        # N = 2^17 words of 8 bytes = 1 MiB per limb.
        assert BASELINE_JUNG.limb_bytes == 2**17 * 8 == 1048576

    def test_ciphertext_size_matches_paper(self):
        # The paper quotes ~73.4 MB for N=2^17, 35 limbs (decimal MB).
        assert BASELINE_JUNG.ciphertext_bytes() == pytest.approx(73.4e6, rel=0.01)


class TestDecomposition:
    def test_alpha_baseline(self):
        # alpha = ceil((35+1)/3) = 12, as computed in Section 3.1.
        assert BASELINE_JUNG.alpha == 12

    def test_alpha_mad_optimal(self):
        # alpha = ceil((40+1)/2) = 21.
        assert MAD_OPTIMAL.alpha == 21

    def test_beta_full_level(self):
        # beta = ceil((35+1)/12) = 3 = dnum at full level.
        assert BASELINE_JUNG.beta(35) == 3

    def test_beta_decreases_with_level(self):
        assert BASELINE_JUNG.beta(12) == 2
        assert BASELINE_JUNG.beta(10) == 1

    def test_beta_never_exceeds_dnum(self):
        for limbs in range(1, BASELINE_JUNG.max_limbs + 1):
            assert BASELINE_JUNG.beta(limbs) <= BASELINE_JUNG.dnum

    def test_raised_limbs(self):
        assert BASELINE_JUNG.raised_limbs(35) == 47

    def test_beta_rejects_bad_limbs(self):
        with pytest.raises(ValueError):
            BASELINE_JUNG.beta(0)


class TestSecurity:
    def test_paper_presets_are_secure(self):
        assert BASELINE_JUNG.is_128_bit_secure()
        assert MAD_OPTIMAL.is_128_bit_secure()

    def test_oversized_modulus_is_insecure(self):
        p = CkksParams(log_n=17, log_q=60, max_limbs=55, dnum=1)
        assert not p.is_128_bit_secure()

    def test_log_qp_composition(self):
        p = BASELINE_JUNG
        assert p.log_qp == p.max_limbs * p.log_q + p.alpha * p.log_q


class TestBootstrapBudget:
    def test_baseline_log_q1_matches_table6(self):
        # Table 6 GPU row: log Q1 = 1080 = 20 limbs * 54 bits.
        assert BASELINE_JUNG.bootstrap_output_limbs == 20
        assert BASELINE_JUNG.log_q1 == 1080

    def test_mad_log_q1_matches_table6(self):
        # Table 6 MAD rows: log Q1 = 950 = 19 limbs * 50 bits.
        assert MAD_OPTIMAL.bootstrap_output_limbs == 19
        assert MAD_OPTIMAL.log_q1 == 950

    def test_unbootstrappable_params_detected(self):
        p = CkksParams(log_n=13, log_q=40, max_limbs=10, dnum=2)
        assert not p.supports_bootstrapping()
        with pytest.raises(ValueError):
            _ = p.bootstrap_output_limbs


class TestSizes:
    def test_switching_key_bytes(self):
        p = BASELINE_JUNG
        expected = 2 * p.dnum * (p.max_limbs + p.alpha) * p.limb_bytes
        assert p.switching_key_bytes() == expected

    def test_key_compression_halves_size(self):
        p = BASELINE_JUNG
        assert p.switching_key_bytes(compressed=True) * 2 == p.switching_key_bytes()

    def test_plaintext_is_half_a_ciphertext(self):
        p = toy_params()
        assert 2 * p.plaintext_bytes(4) == p.ciphertext_bytes(4)

    def test_toy_params_passes_log_special_through(self):
        assert toy_params(log_q=29).special_bits == 29
        assert toy_params(log_q=29, log_special=30).special_bits == 30


class TestValidation:
    def test_rejects_bad_log_n(self):
        with pytest.raises(ValueError):
            CkksParams(log_n=1, log_q=40, max_limbs=4, dnum=2)

    def test_rejects_oversized_limb(self):
        with pytest.raises(ValueError):
            CkksParams(log_n=10, log_q=70, max_limbs=4, dnum=2)

    def test_rejects_bad_dnum(self):
        with pytest.raises(ValueError):
            CkksParams(log_n=10, log_q=40, max_limbs=4, dnum=6)
        with pytest.raises(ValueError):
            CkksParams(log_n=10, log_q=40, max_limbs=4, dnum=0)

    def test_describe_mentions_key_facts(self):
        text = BASELINE_JUNG.describe()
        assert "2^17" in text and "L=35" in text and "dnum=3" in text

    @given(
        st.integers(2, 17),
        st.integers(20, 60),
        st.integers(1, 50),
        st.integers(1, 8),
    )
    def test_derived_quantities_consistent(self, log_n, log_q, max_limbs, dnum):
        if dnum > max_limbs + 1:
            return
        p = CkksParams(log_n=log_n, log_q=log_q, max_limbs=max_limbs, dnum=dnum)
        assert p.alpha * p.dnum >= p.max_limbs + 1
        assert p.beta(max_limbs) <= p.dnum
        assert p.ciphertext_bytes(1) == 2 * p.limb_bytes
