import pytest

from repro.params import CkksParams
from repro.hardware import CRATERLAKE


class TestWordSize:
    def test_default_is_64_bit(self):
        p = CkksParams(log_n=14, log_q=50, max_limbs=10, dnum=2)
        assert p.word_bytes == 8
        assert p.limb_bytes == 8 * 2**14

    def test_32_bit_words_halve_limb_size(self):
        p = CkksParams(log_n=14, log_q=28, max_limbs=10, dnum=2, word_bytes=4)
        assert p.limb_bytes == 4 * 2**14

    def test_craterlake_uses_packed_words(self):
        assert CRATERLAKE.params.word_bytes == 4
        # One CraterLake limb is ~0.5 MB instead of ~1 MB.
        assert CRATERLAKE.params.limb_bytes == 4 * 2**17

    def test_oversized_modulus_rejected(self):
        with pytest.raises(ValueError):
            CkksParams(log_n=14, log_q=40, max_limbs=10, dnum=2, word_bytes=4)

    def test_invalid_word_size_rejected(self):
        with pytest.raises(ValueError):
            CkksParams(log_n=14, log_q=28, max_limbs=10, dnum=2, word_bytes=2)

    def test_ciphertext_bytes_track_word_size(self):
        wide = CkksParams(log_n=14, log_q=28, max_limbs=10, dnum=2)
        packed = CkksParams(log_n=14, log_q=28, max_limbs=10, dnum=2, word_bytes=4)
        assert wide.ciphertext_bytes(10) == 2 * packed.ciphertext_bytes(10)
