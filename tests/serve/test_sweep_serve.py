"""The serve.scenario sweep evaluator: grids, parity and presets.

Capacity planning runs serving simulations through ``repro.sweep``;
the contract is that a grid's rows are bit-identical whether evaluated
serially or process-parallel, and identical to what the direct
:func:`repro.serve.simulate_fleet` path reports.
"""

import pytest

from repro.serve import SCENARIOS, fleet_with, simulate_fleet
from repro.serve.report import fleet_row
from repro.sweep import SweepAxis, SweepSpec, run_sweep
from repro.sweep.presets import SWEEP_PRESETS


def micro_spec():
    return SweepSpec(
        name="serve-micro-grid",
        evaluator="serve.scenario",
        axes=(SweepAxis("devices", (1, 2)),),
        context={"scenario": "micro", "fleet": "bts-micro", "seed": 0},
    )


class TestServeEvaluator:
    def test_rows_match_the_direct_simulation(self):
        outcome = run_sweep(micro_spec())
        scenario = SCENARIOS["micro"]
        for row, devices in zip(outcome.rows, (1, 2)):
            fleet = fleet_with(scenario.fleets[0], devices=devices)
            direct = fleet_row(simulate_fleet(scenario, fleet, seed=0))
            direct["scenario"] = "micro"
            direct["seed"] = 0
            assert row == direct

    def test_parallel_rows_are_bit_identical_to_serial(self):
        serial = run_sweep(micro_spec(), jobs=1)
        parallel = run_sweep(micro_spec(), jobs=2)
        assert serial.rows == parallel.rows

    def test_unknown_fleet_preset_is_an_error(self):
        spec = SweepSpec(
            name="serve-bad-fleet",
            evaluator="serve.scenario",
            axes=(SweepAxis("devices", (1,)),),
            context={"scenario": "micro", "fleet": "armada", "seed": 0},
        )
        with pytest.raises(Exception, match="unknown fleet preset"):
            run_sweep(spec)

    def test_axis_fleet_overrides_context_fleet(self):
        spec = SweepSpec(
            name="serve-fleet-axis",
            evaluator="serve.scenario",
            axes=(SweepAxis("fleet", ("bts-micro",)),),
            context={"scenario": "micro", "fleet": "does-not-exist", "seed": 0},
        )
        (row,) = run_sweep(spec).rows
        assert row["fleet"] == "bts-micro"


class TestServeCapacityPreset:
    def test_registered(self):
        assert "serve-capacity" in SWEEP_PRESETS

    def test_quick_grid_shape(self):
        spec = SWEEP_PRESETS["serve-capacity"](True)
        assert spec.evaluator == "serve.scenario"
        assert [axis.name for axis in spec.axes] == [
            "devices",
            "cache_policy",
        ]
        # Quick keeps the grid at 4 points: 2 fleet sizes x 2 policies.
        assert len(spec.axes[0].values) * len(spec.axes[1].values) == 4

    def test_full_grid_includes_weighted_policy(self):
        spec = SWEEP_PRESETS["serve-capacity"](False)
        assert "weighted" in spec.axes[1].values
