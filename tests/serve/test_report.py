"""serve_report.json: assembly, canonical layout and validation."""

import copy
import json

import pytest

from repro.serve import (
    SCENARIOS,
    build_serve_report,
    load_serve_report,
    run_scenario,
    scenario_fingerprint,
    validate_serve_report,
    write_serve_report,
)

MICRO = SCENARIOS["micro"]


@pytest.fixture(scope="module")
def report():
    return build_serve_report(MICRO, 0, run_scenario(MICRO, seed=0))


class TestFingerprint:
    def test_stable_across_calls(self):
        assert scenario_fingerprint(MICRO, 0) == scenario_fingerprint(MICRO, 0)

    def test_seed_changes_the_fingerprint(self):
        assert scenario_fingerprint(MICRO, 0) != scenario_fingerprint(MICRO, 1)

    def test_is_hex_sha256(self):
        digest = scenario_fingerprint(MICRO, 0)
        assert len(digest) == 64
        int(digest, 16)  # raises on non-hex


class TestBuild:
    def test_validates_on_construction(self, report):
        validate_serve_report(report)  # must not raise

    def test_identity_fields(self, report):
        assert report["schema"] == "repro.serve/v1"
        assert report["scenario"] == "micro"
        assert report["seed"] == 0
        assert report["config"] == MICRO.config
        assert report["fingerprint"] == scenario_fingerprint(MICRO, 0)

    def test_one_row_per_fleet_in_order(self, report):
        assert [row["fleet"] for row in report["fleets"]] == [
            fleet.name for fleet in MICRO.fleets
        ]

    def test_rows_carry_no_sweep_bookkeeping(self, report):
        for row in report["fleets"]:
            assert "scenario" not in row and "seed" not in row

    def test_payload_is_byte_identical_across_runs(self, report):
        again = build_serve_report(MICRO, 0, run_scenario(MICRO, seed=0))
        strip = lambda r: {  # noqa: E731 - provenance carries timestamps
            k: v for k, v in r.items() if k != "provenance"
        }
        assert json.dumps(strip(report), sort_keys=True) == json.dumps(
            strip(again), sort_keys=True
        )


class TestRoundTrip:
    def test_write_then_load(self, report, tmp_path):
        path = str(tmp_path / "serve_report.json")
        write_serve_report(report, path)
        assert load_serve_report(path) == report

    def test_canonical_layout(self, report, tmp_path):
        path = tmp_path / "serve_report.json"
        write_serve_report(report, str(path))
        text = path.read_text()
        assert text.endswith("\n")
        assert text == json.dumps(report, indent=1, sort_keys=True) + "\n"

    def test_load_missing_file_is_none(self, tmp_path):
        assert load_serve_report(str(tmp_path / "absent.json")) is None


class TestValidateRejects:
    def broken(self, report, mutate):
        clone = copy.deepcopy(report)
        mutate(clone)
        with pytest.raises(ValueError, match="invalid serve report"):
            validate_serve_report(clone)

    def test_not_an_object(self):
        with pytest.raises(ValueError, match="not an object"):
            validate_serve_report([])

    def test_wrong_schema_id(self, report):
        self.broken(report, lambda r: r.update(schema="repro.serve/v2"))

    def test_missing_fingerprint(self, report):
        self.broken(report, lambda r: r.pop("fingerprint"))

    def test_malformed_fingerprint(self, report):
        self.broken(report, lambda r: r.update(fingerprint="beef"))

    def test_boolean_seed(self, report):
        self.broken(report, lambda r: r.update(seed=True))

    def test_empty_fleets(self, report):
        self.broken(report, lambda r: r.update(fleets=[]))

    def test_utilisation_above_one(self, report):
        self.broken(
            report, lambda r: r["fleets"][0].update(utilisation=1.5)
        )

    def test_negative_request_count(self, report):
        self.broken(
            report,
            lambda r: r["fleets"][0]["requests"].update(completed=-1),
        )

    def test_saved_fraction_above_one(self, report):
        self.broken(
            report,
            lambda r: r["fleets"][0]["batching"].update(
                key_read_saved_fraction=1.2
            ),
        )

    def test_missing_tenant_latency_keys(self, report):
        def mutate(r):
            r["fleets"][0]["tenants"][0]["latency"] = {"count": 1}

        self.broken(report, mutate)

    def test_non_boolean_sla_verdict(self, report):
        def mutate(r):
            r["fleets"][0]["tenants"][0]["sla"]["met"] = "yes"

        self.broken(report, mutate)

    def test_missing_provenance(self, report):
        self.broken(report, lambda r: r.pop("provenance"))
