"""Scheduler disciplines: ordering, tie-breaks and wfq fairness."""

import pytest

from repro.serve.requests import Request
from repro.serve.schedulers import SCHEDULER_NAMES, make_scheduler

#: Fixed per-kind service estimates, so tests control sjf/wfq ordering.
ESTIMATES = {"short": 0.001, "long": 0.010}


def estimator(request):
    return ESTIMATES[request.kind]


def req(seq, tenant="t", kind="short", arrival_s=0.0):
    return Request(seq=seq, tenant=tenant, kind=kind, arrival_s=arrival_s)


def drain(queue):
    order = []
    while len(queue):
        order.append(queue.pop().seq)
    return order


class TestConstruction:
    def test_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("lifo", estimator)

    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_known_names_construct(self, name):
        assert make_scheduler(name, estimator).name == name


class TestFifo:
    def test_pops_in_arrival_sequence(self):
        queue = make_scheduler("fifo", estimator)
        for seq in (3, 0, 2, 1):
            queue.push(req(seq))
        assert drain(queue) == [0, 1, 2, 3]

    def test_peek_does_not_remove(self):
        queue = make_scheduler("fifo", estimator)
        queue.push(req(7))
        assert queue.peek().seq == 7
        assert len(queue) == 1

    def test_peek_empty_is_none(self):
        assert make_scheduler("fifo", estimator).peek() is None


class TestSjf:
    def test_shorter_estimate_wins(self):
        queue = make_scheduler("sjf", estimator)
        queue.push(req(0, kind="long"))
        queue.push(req(1, kind="short"))
        assert drain(queue) == [1, 0]

    def test_equal_estimates_fall_back_to_sequence(self):
        queue = make_scheduler("sjf", estimator)
        for seq in (5, 2, 9):
            queue.push(req(seq, kind="short"))
        assert drain(queue) == [2, 5, 9]


class TestWfq:
    def test_heavier_weight_drains_more_of_a_backlog_prefix(self):
        # Two tenants each queue 8 long requests; the weight-3 tenant
        # should own roughly 3/4 of the first 8 dispatches.
        queue = make_scheduler(
            "wfq", estimator, weights={"heavy": 3.0, "light": 1.0}
        )
        seq = 0
        for _ in range(8):
            for tenant in ("heavy", "light"):
                queue.push(req(seq, tenant=tenant, kind="long"))
                seq += 1
        first = [queue.pop().tenant for _ in range(8)]
        assert first.count("heavy") == 6

    def test_equal_weights_interleave(self):
        queue = make_scheduler("wfq", estimator, weights={"a": 1.0, "b": 1.0})
        seq = 0
        for _ in range(4):
            for tenant in ("a", "b"):
                queue.push(req(seq, tenant=tenant, kind="long"))
                seq += 1
        order = [queue.pop().tenant for _ in range(8)]
        assert order.count("a") == order.count("b") == 4

    def test_unlisted_tenant_defaults_to_weight_one(self):
        queue = make_scheduler("wfq", estimator, weights={})
        queue.push(req(0, tenant="ghost", kind="short"))
        assert queue.pop().seq == 0


class TestTakeMatching:
    def test_collects_only_matching_up_to_limit(self):
        queue = make_scheduler("fifo", estimator)
        for seq, kind in enumerate(["short", "long", "short", "short"]):
            queue.push(req(seq, kind=kind))
        head = queue.pop()
        batch = queue.take_matching(head, 3, lambda r: r.kind == "short")
        assert [r.seq for r in batch] == [0, 2, 3]

    def test_non_matching_requests_stay_queued_in_order(self):
        queue = make_scheduler("fifo", estimator)
        for seq, kind in enumerate(["short", "long", "short", "long"]):
            queue.push(req(seq, kind=kind))
        head = queue.pop()
        queue.take_matching(head, 4, lambda r: r.kind == "short")
        assert drain(queue) == [1, 3]
