"""End-to-end simulator invariants on the micro scenario.

The micro scenario (one BTS device, two tenants, 2 simulated seconds)
runs in well under a second of host time, so every test here can afford
a full drain-to-completion simulation.
"""

import dataclasses

import pytest

from repro.hardware import BTS
from repro.serve import (
    SCENARIOS,
    BatchPolicy,
    run_scenario,
    simulate,
    simulate_fleet,
)

MICRO = SCENARIOS["micro"]


@pytest.fixture(scope="module")
def result():
    return simulate_fleet(MICRO, MICRO.fleets[0], seed=0)


class TestDeterminism:
    def test_same_seed_is_identical(self, result):
        again = simulate_fleet(MICRO, MICRO.fleets[0], seed=0)
        assert again == result

    def test_different_seed_changes_traffic(self, result):
        other = simulate_fleet(MICRO, MICRO.fleets[0], seed=1)
        assert other.offered != result.offered


class TestConservation:
    def test_every_offered_request_completes(self, result):
        # The run drains the queue, so serving is lossless.
        assert result.completed == result.offered
        for tenant in result.tenants:
            assert tenant.completed == tenant.offered

    def test_fleet_totals_are_tenant_sums(self, result):
        assert result.offered == sum(t.offered for t in result.tenants)
        assert result.bootstraps == sum(t.bootstraps for t in result.tenants)

    def test_tenant_costs_sum_to_the_fleet_ledger(self, result):
        total = sum(
            (t.cost for t in result.tenants), start=type(result.total_cost)()
        )
        assert total == result.total_cost

    def test_makespan_covers_the_arrival_horizon(self, result):
        assert result.makespan_s >= 0.0
        assert result.duration_s == MICRO.duration_s


class TestBatching:
    def test_batching_saves_key_reads(self, result):
        # bts-micro batches with a 1 ms window; some batches of size > 1
        # must form at these rates, so the realised ksk traffic is
        # strictly below the unbatched counterfactual.
        assert result.mean_batch_size > 1.0
        assert 0.0 < result.key_read_saved_fraction < 1.0
        total = result.total_cost.traffic
        unbatched = result.unbatched_cost.traffic
        assert total.key_read < unbatched.key_read

    def test_non_key_traffic_matches_unbatched(self, result):
        # Batching amortizes only the switching-key stream.
        total = result.total_cost.traffic
        unbatched = result.unbatched_cost.traffic
        assert total.ct_read == unbatched.ct_read
        assert total.ct_write == unbatched.ct_write
        assert total.pt_read == unbatched.pt_read

    def test_no_batching_without_a_window(self):
        fleet = dataclasses.replace(
            MICRO.fleets[0], batch=BatchPolicy(window_s=0.0, max_batch=1)
        )
        solo = simulate_fleet(MICRO, fleet, seed=0)
        assert solo.batched_requests == solo.batches  # every batch is size 1
        assert solo.key_read_saved_fraction == 0.0
        assert solo.total_cost == solo.unbatched_cost


class TestBootstrapBudgets:
    def test_level_budget_triggers_bootstraps(self, result):
        assert result.bootstraps > 0

    def test_larger_budget_means_fewer_bootstraps(self):
        tenants = tuple(
            dataclasses.replace(t, level_budget=1000) for t in MICRO.tenants
        )
        scenario = dataclasses.replace(
            MICRO, name="micro-budget", tenants=tenants
        )
        relaxed = simulate_fleet(scenario, MICRO.fleets[0], seed=0)
        tight = simulate_fleet(MICRO, MICRO.fleets[0], seed=0)
        assert relaxed.bootstraps < tight.bootstraps

    def test_bootstraps_are_not_counted_as_completed_requests(self, result):
        assert result.completed == result.offered
        assert result.bootstraps > 0  # yet completed stayed at offered


class TestSlaAndUtilisation:
    def test_latency_summaries_exist_for_active_tenants(self, result):
        for tenant in result.tenants:
            assert tenant.latency is not None
            assert tenant.latency.count == tenant.completed
            assert tenant.latency.p50_s <= tenant.latency.p99_s
            assert tenant.latency.p99_s <= tenant.latency.p999_s

    def test_sla_verdict_only_where_a_target_exists(self, result):
        verdicts = {t.tenant: t.sla_met for t in result.tenants}
        assert verdicts["beta"] is None  # beta declares no SLA
        assert isinstance(verdicts["alpha"], bool)

    def test_utilisation_is_a_fraction(self, result):
        assert 0.0 < result.utilisation <= 1.0

    def test_more_devices_cannot_slow_the_fleet_down(self):
        one = simulate_fleet(MICRO, MICRO.fleets[0], seed=0)
        two = simulate_fleet(
            MICRO, dataclasses.replace(MICRO.fleets[0], devices=2), seed=0
        )
        assert two.makespan_s <= one.makespan_s


class TestValidation:
    def test_rejects_zero_devices(self):
        with pytest.raises(ValueError, match="at least one device"):
            simulate(
                fleet_name="f",
                design=BTS,
                devices=0,
                tenants=MICRO.tenants,
                duration_s=1.0,
                seed=0,
                scenario="micro",
            )

    def test_rejects_empty_tenant_list(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            simulate(
                fleet_name="f",
                design=BTS,
                devices=1,
                tenants=(),
                duration_s=1.0,
                seed=0,
                scenario="micro",
            )


class TestRunScenario:
    def test_results_follow_fleet_order(self):
        results = run_scenario(MICRO, seed=0)
        assert [r.fleet for r in results] == [
            fleet.name for fleet in MICRO.fleets
        ]
