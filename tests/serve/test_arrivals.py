"""Seeded arrival processes: determinism, shapes and validation."""

import pytest

from repro.serve.arrivals import ArrivalProcess, arrival_times, tenant_arrivals


class TestArrivalTimes:
    def test_same_seed_key_is_bit_identical(self):
        process = ArrivalProcess(shape="poisson", rate_per_s=25.0)
        first = arrival_times(process, 10.0, "0:micro:alpha")
        second = arrival_times(process, 10.0, "0:micro:alpha")
        assert first == second

    def test_different_seed_keys_diverge(self):
        process = ArrivalProcess(shape="poisson", rate_per_s=25.0)
        assert arrival_times(process, 10.0, "0:micro:alpha") != arrival_times(
            process, 10.0, "1:micro:alpha"
        )

    @pytest.mark.parametrize("shape", ["poisson", "bursty", "diurnal"])
    def test_times_sorted_and_in_range(self, shape):
        process = ArrivalProcess(shape=shape, rate_per_s=40.0)
        times = arrival_times(process, 5.0, f"0:test:{shape}")
        assert times == sorted(times)
        assert all(0.0 <= when < 5.0 for when in times)

    @pytest.mark.parametrize("shape", ["poisson", "diurnal"])
    def test_mean_rate_roughly_respected(self, shape):
        # Long horizon so the law of large numbers bites; the bound is
        # loose (±30%) because this is a sanity check, not a statistics
        # exam — but it catches off-by-rate_factor bugs cold.  Bursty is
        # excluded: its rate_per_s is nominal, the hyperexponential mix
        # deliberately shifts the realised mean.
        process = ArrivalProcess(shape=shape, rate_per_s=20.0)
        times = arrival_times(process, 100.0, f"0:rate:{shape}")
        assert 1400 <= len(times) <= 2600

    def test_bursty_has_heavier_gaps_than_poisson(self):
        nominal = ArrivalProcess(shape="poisson", rate_per_s=20.0)
        bursty = ArrivalProcess(shape="bursty", rate_per_s=20.0)
        plain = arrival_times(nominal, 100.0, "0:tail:a")
        heavy = arrival_times(bursty, 100.0, "0:tail:b")
        gap = lambda ts: max(  # noqa: E731 - tiny local helper
            b - a for a, b in zip(ts, ts[1:])
        )
        assert heavy and gap(heavy) > gap(plain)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError, match="duration_s"):
            arrival_times(ArrivalProcess(), 0.0, "k")


class TestArrivalProcessValidation:
    def test_rejects_unknown_shape(self):
        with pytest.raises(ValueError, match="unknown arrival shape"):
            ArrivalProcess(shape="uniform")

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError, match="rate_per_s"):
            ArrivalProcess(rate_per_s=0.0)

    def test_rejects_burst_factor_below_one(self):
        with pytest.raises(ValueError, match="burst_factor"):
            ArrivalProcess(shape="bursty", burst_factor=0.5)

    def test_rejects_amplitude_of_one(self):
        with pytest.raises(ValueError, match="amplitude"):
            ArrivalProcess(shape="diurnal", amplitude=1.0)


class TestTenantArrivals:
    MIX = (("mult", 2.0), ("rotate", 1.0))

    def test_kinds_come_from_mix(self):
        pairs = tenant_arrivals(ArrivalProcess(), self.MIX, 10.0, "0:s:t")
        assert pairs
        assert {kind for _, kind in pairs} <= {"mult", "rotate"}

    def test_mix_change_keeps_arrival_times(self):
        # The mix is drawn from an independent stream, so re-weighting
        # the mix must not perturb the traffic shape.
        narrow = tenant_arrivals(ArrivalProcess(), self.MIX, 10.0, "0:s:t")
        wide = tenant_arrivals(
            ArrivalProcess(),
            (("mult", 1.0), ("rotate", 1.0), ("key_switch", 5.0)),
            10.0,
            "0:s:t",
        )
        assert [when for when, _ in narrow] == [when for when, _ in wide]

    def test_mix_weights_shift_the_draw(self):
        pairs = tenant_arrivals(
            ArrivalProcess(rate_per_s=50.0),
            (("mult", 99.0), ("rotate", 1.0)),
            20.0,
            "0:s:t",
        )
        kinds = [kind for _, kind in pairs]
        assert kinds.count("mult") > kinds.count("rotate")

    def test_rejects_empty_mix(self):
        with pytest.raises(ValueError, match="at least one"):
            tenant_arrivals(ArrivalProcess(), (), 1.0, "k")

    def test_rejects_nonpositive_weight_total(self):
        with pytest.raises(ValueError):
            tenant_arrivals(ArrivalProcess(), (("mult", 0.0),), 1.0, "k")
