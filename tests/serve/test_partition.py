"""Cache partition policies: slices feed the existing CacheModel."""

import pytest

from repro.perf import CacheModel
from repro.serve.arrivals import ArrivalProcess
from repro.serve.partition import CACHE_POLICIES, partition_cache
from repro.serve.requests import TenantSpec


def tenant(name, weight=1.0):
    return TenantSpec(
        name=name,
        arrival=ArrivalProcess(),
        mix=(("mult", 1.0),),
        weight=weight,
    )


TENANTS = (tenant("a", weight=3.0), tenant("b", weight=1.0))


class TestPartitionCache:
    def test_shared_gives_every_tenant_full_capacity(self):
        slices = partition_cache("shared", 64.0, TENANTS)
        full = CacheModel.from_mb(64.0)
        assert slices["a"].size_bytes == full.size_bytes
        assert slices["b"].size_bytes == full.size_bytes

    def test_equal_splits_capacity_evenly(self):
        slices = partition_cache("equal", 64.0, TENANTS)
        half = CacheModel.from_mb(32.0)
        assert slices["a"].size_bytes == half.size_bytes
        assert slices["a"].size_bytes == slices["b"].size_bytes

    def test_weighted_splits_by_tenant_weight(self):
        slices = partition_cache("weighted", 64.0, TENANTS)
        assert slices["a"].size_bytes == CacheModel.from_mb(
            48.0
        ).size_bytes
        assert slices["b"].size_bytes == CacheModel.from_mb(
            16.0
        ).size_bytes

    def test_partitioned_slices_sum_to_the_chip(self):
        for policy in ("equal", "weighted"):
            slices = partition_cache(policy, 64.0, TENANTS)
            total = sum(s.size_bytes for s in slices.values())
            assert total == CacheModel.from_mb(64.0).size_bytes

    def test_every_policy_is_reachable(self):
        assert set(CACHE_POLICIES) == {"shared", "equal", "weighted"}
        for policy in CACHE_POLICIES:
            slices = partition_cache(policy, 32.0, TENANTS)
            assert set(slices) == {"a", "b"}

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown cache policy"):
            partition_cache("lru", 32.0, TENANTS)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="on_chip_mb"):
            partition_cache("equal", 0.0, TENANTS)

    def test_rejects_empty_tenant_list(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            partition_cache("equal", 32.0, ())
