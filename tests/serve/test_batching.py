"""Batch pricing: ksk amortization without mutating cost ledgers."""

import pytest

from repro.perf.events import CostReport, MemTraffic, OpCount
from repro.serve.batching import (
    BatchPolicy,
    batch_key,
    batched_cost,
    key_reads_saved,
)
from repro.serve.requests import Request

UNIT = CostReport(
    ops=OpCount(mults=100, adds=40),
    traffic=MemTraffic(ct_read=800, ct_write=400, key_read=1600, pt_read=64),
)


class TestBatchPolicy:
    def test_defaults_are_valid(self):
        policy = BatchPolicy()
        assert policy.window_s == 0.0 and policy.max_batch >= 1

    def test_rejects_negative_window(self):
        with pytest.raises(ValueError, match="window_s"):
            BatchPolicy(window_s=-0.001)

    def test_rejects_zero_max_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            BatchPolicy(max_batch=0)


class TestBatchKey:
    def test_same_tenant_and_kind_share_a_key(self):
        a = Request(seq=0, tenant="t", kind="mult", arrival_s=0.0)
        b = Request(seq=1, tenant="t", kind="mult", arrival_s=0.5)
        assert batch_key(a) == batch_key(b)

    def test_kind_splits_the_key(self):
        a = Request(seq=0, tenant="t", kind="mult", arrival_s=0.0)
        b = Request(seq=1, tenant="t", kind="rotate", arrival_s=0.0)
        assert batch_key(a) != batch_key(b)


class TestBatchedCost:
    def test_batch_of_one_is_the_unit_cost(self):
        assert batched_cost(UNIT, 1) == UNIT

    def test_compute_and_operand_traffic_scale_with_size(self):
        batch = batched_cost(UNIT, 4)
        assert batch.ops.mults == UNIT.ops.mults * 4
        assert batch.ops.adds == UNIT.ops.adds * 4
        assert batch.traffic.ct_read == UNIT.traffic.ct_read * 4
        assert batch.traffic.ct_write == UNIT.traffic.ct_write * 4
        assert batch.traffic.pt_read == UNIT.traffic.pt_read * 4

    def test_key_reads_do_not_scale(self):
        # The whole point: switching keys stream once per batch.
        batch = batched_cost(UNIT, 8)
        assert batch.traffic.key_read == UNIT.traffic.key_read

    def test_original_report_is_untouched(self):
        before = UNIT.traffic.key_read
        batched_cost(UNIT, 8)
        assert UNIT.traffic.key_read == before

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError, match="batch size"):
            batched_cost(UNIT, 0)

    def test_savings_match_key_reads_saved(self):
        size = 5
        saved = key_reads_saved(UNIT, size)
        unbatched = UNIT.traffic.key_read * size
        assert unbatched - batched_cost(UNIT, size).traffic.key_read == saved

    def test_no_savings_for_singleton(self):
        assert key_reads_saved(UNIT, 1) == 0
